"""The concurrency-safety and resource-lifecycle REP30x rules.

Built on the lock/with/resource facts collected by
:mod:`repro.analysis.project`, this fourth pass guards the invariants
the upcoming multi-tenant query tier depends on — *before* any
serving-layer code exists to violate them:

========  ==============================================================
REP301    a lock-protected field is protected on every write path
REP302    locks are always acquired in one global order (no cycles)
REP303    OS handles are closed on every path or owned by a context
REP304    no blocking IO (fsync/replace/open) while a lock is held
REP305    lazy-init fills of shared attributes happen under a lock
========  ==============================================================

REP303 and REP304 are cone-scoped: a module's findings depend only on
its own facts plus the effect summaries of its transitive imports.
REP301, REP302, and REP305 are global-scope: spawn sites and lock
acquisitions anywhere in the project (including reference trees) feed
the reachability and ordering analyses, so cone invalidation cannot
bound them.

"Spawn-reachable" throughout means reachable through the call graph
from a ``Thread``/pool dispatch target or from any function of a
module named by the ``concurrency-roots`` config key (the query tier's
shared entry points).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.effect_rules import _graph_node, _iter_effects
from repro.analysis.findings import Finding, Severity
from repro.analysis.program_rules import _scoped_modules
from repro.analysis.project import (
    MODULE_SCOPE,
    CallSite,
    ModuleSummary,
    ProjectModel,
)
from repro.analysis.rules import ProjectRule, register

#: Constructors (and unpickling) run before the object is shared, so
#: their writes need no lock.
_CONSTRUCTOR_METHODS = frozenset({"__init__", "__new__", "__setstate__"})
#: External callees that block on IO or sleep; calling one while a
#: lock is held serializes every waiter behind the disk.
BLOCKING_QUALNAMES = frozenset({
    "os.fsync",
    "os.fdatasync",
    "os.replace",
    "os.rename",
    "time.sleep",
    "shutil.copy",
    "shutil.copy2",
    "shutil.copyfile",
    "shutil.copytree",
    "shutil.move",
    "shutil.rmtree",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.run",
})


def _method_class(qualname: str, summary: ModuleSummary) -> Optional[str]:
    """The defining class qualname of a method, if it is one."""
    info = summary.functions.get(qualname)
    if info is None or not info.is_method:
        return None
    return qualname.rsplit(".", 1)[0]


class _LockIndex:
    """Recognized lock names for one project, shared by the REP30x rules.

    An attribute guard (``with self._lock:``) is recognized when the
    attribute name appears in the ``lock-attributes`` config list or
    is assigned a ``threading.Lock``-style factory anywhere in the
    project.  A bare-name guard is recognized when it names a
    module-level lock assignment in the module under analysis.
    """

    def __init__(self, project: ProjectModel, config: AnalysisConfig) -> None:
        self.attr_names: Set[str] = set(config.lock_attributes)
        #: module -> module-level lock names defined there.
        self.global_names: Dict[str, Set[str]] = {}
        for module in sorted(project.modules):
            for _, fx in _iter_effects(project.modules[module]):
                for lock in fx.locks:
                    if lock.scope == "attr":
                        self.attr_names.add(lock.target)
                    else:
                        self.global_names.setdefault(module, set()).add(
                            lock.target
                        )

    def guard_attr(self, expr: str) -> Optional[str]:
        """The lock-attribute name of a ``self.X``/``cls.X`` guard."""
        parts = expr.split(".")
        if parts[0] in ("self", "cls") and len(parts) == 2:
            if parts[1] in self.attr_names:
                return parts[1]
        return None

    def is_lock_expr(self, module: str, expr: str) -> bool:
        """Whether a with-context expression names a recognized lock."""
        if self.guard_attr(expr) is not None:
            return True
        return "." not in expr and expr in self.global_names.get(module, set())

    def is_guarded(self, module: str, guards: Sequence[str]) -> bool:
        """Whether any held with-context is a recognized lock."""
        return any(self.is_lock_expr(module, g) for g in guards)

    def canonical(
        self, module: str, summary: ModuleSummary, fx_key: str, expr: str
    ) -> Optional[str]:
        """Project-wide identity of a lock expression, or None.

        ``self._lock`` canonicalizes to ``<class qualname>._lock`` so
        the same instance lock acquired from two methods is one node
        in the ordering graph; module-level locks canonicalize to
        their resolved qualified name.
        """
        attr = self.guard_attr(expr)
        if attr is not None:
            owner = _method_class(fx_key, summary)
            return f"{owner}.{attr}" if owner else None
        if self.is_lock_expr(module, expr):
            return f"{module}.{expr}"
        return None


def _spawn_reachable(
    project: ProjectModel, config: AnalysisConfig
) -> Dict[str, List[str]]:
    """Witness chains for everything reachable from concurrent entry.

    Entry points are (a) resolved ``Thread``/pool dispatch targets
    anywhere in the project and (b) every function of every module
    matched by a ``concurrency-roots`` prefix.
    """
    entries: Set[str] = set()
    for module in sorted(project.modules):
        summary = project.modules[module]
        for fx_key, fx in _iter_effects(summary):
            for spawn in fx.spawns:
                call = CallSite(
                    caller=fx_key,
                    callee_expr=spawn.target,
                    lineno=spawn.lineno,
                    col=spawn.col,
                )
                resolved = project.resolve_call(summary, call)
                if resolved is None:
                    resolved = project.resolve(module, spawn.target)
                if resolved is not None:
                    entries.add(resolved)
    for prefix in config.concurrency_roots:
        for module in project.modules:
            if module == prefix or module.startswith(prefix + "."):
                entries.add(module)
                entries.update(project.modules[module].functions)
    return project.reachable_from(entries)


@register
class SharedStateLockDiscipline(ProjectRule):
    """REP301 — a lock-protected field is protected on every write path.

    Invariant:
        If any method of a class writes a field while holding a
        recognized lock (``with self._lock:`` with the attribute named
        in ``lock-attributes`` or assigned a ``threading.Lock``-style
        factory), then **every** spawn-reachable write of that field
        outside ``__init__``/``__new__``/``__setstate__`` must hold a
        recognized lock too.  The same applies to module-level globals
        in modules that define a module-level lock.

    Why:
        Inconsistent locksets are the classic statically-detectable
        race: one guarded write proves the author considers the field
        shared, so the unguarded write elsewhere is not a design
        choice but an oversight.  The query tier will hammer
        ``PassiveDnsDatabase``'s generation-keyed caches from many
        threads; a single unguarded cache fill reintroduces the torn
        read the locks were added to prevent.

    Good::

        def fill(self, key, value):
            with self._lock:
                self._agg_cache[key] = value      # always guarded

    Bad::

        def fill(self, key, value):
            with self._lock:
                self._agg_cache[key] = value

        def evict(self):
            self._agg_cache = {}                  # unguarded elsewhere
    """

    rule_id = "REP301"
    severity = Severity.ERROR
    description = (
        "fields written under a lock somewhere must be written under "
        "a lock everywhere spawn-reachable (inconsistent lockset)"
    )
    #: Spawn sites and guarded writes anywhere in the project define
    #: the audited set, so the dirty cone cannot bound this.
    global_scope = True

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag unguarded writes to otherwise lock-guarded state."""
        locks = _LockIndex(project, config)
        chains = _spawn_reachable(project, config)
        for module in _scoped_modules(project, config, modules):
            summary = project.modules[module]
            guarded_fields = self._guarded_fields(module, summary, locks)
            guarded_globals = self._guarded_globals(module, summary, locks)
            for qualname, fx in _iter_effects(summary):
                if qualname == MODULE_SCOPE:
                    continue
                name = qualname.rsplit(".", 1)[-1]
                if name in _CONSTRUCTOR_METHODS:
                    continue
                chain = chains.get(qualname)
                if chain is None:
                    continue
                owner = _method_class(qualname, summary)
                for site in fx.attr_mutations:
                    if owner is None:
                        break
                    if (owner, site.target) not in guarded_fields:
                        continue
                    if locks.is_guarded(module, site.guards):
                        continue
                    via = " -> ".join(chain)
                    yield self.project_finding(
                        config,
                        summary.relpath,
                        site.lineno,
                        site.col,
                        f"{name}() writes '{site.target}' without a "
                        f"lock, but the field is lock-guarded elsewhere "
                        f"in {owner.rsplit('.', 1)[-1]} and this method "
                        f"is spawn-reachable ({via}); hold the lock "
                        "here too",
                    )
                for site in fx.name_mutations:
                    if site.target not in guarded_globals:
                        continue
                    if locks.is_guarded(module, site.guards):
                        continue
                    via = " -> ".join(chain)
                    yield self.project_finding(
                        config,
                        summary.relpath,
                        site.lineno,
                        site.col,
                        f"{name}() writes module global "
                        f"'{site.target}' without a lock, but the "
                        "global is lock-guarded elsewhere and this "
                        f"function is spawn-reachable ({via}); hold "
                        "the lock here too",
                    )

    def _guarded_fields(
        self, module: str, summary: ModuleSummary, locks: _LockIndex
    ) -> Set[Tuple[str, str]]:
        """(class, field) pairs written under a lock somewhere."""
        out: Set[Tuple[str, str]] = set()
        for qualname, fx in _iter_effects(summary):
            owner = _method_class(qualname, summary)
            if owner is None:
                continue
            for site in fx.attr_mutations:
                if locks.is_guarded(module, site.guards):
                    out.add((owner, site.target))
        return out

    def _guarded_globals(
        self, module: str, summary: ModuleSummary, locks: _LockIndex
    ) -> Set[str]:
        """Module-global names written under a lock somewhere."""
        out: Set[str] = set()
        for _, fx in _iter_effects(summary):
            for site in fx.name_mutations:
                if locks.is_guarded(module, site.guards):
                    out.add(site.target)
        return out


@register
class LockOrderingCycles(ProjectRule):
    """REP302 — locks are always acquired in one global order.

    Invariant:
        The project-wide lock-acquisition graph — an edge A → B
        whenever lock B is acquired (directly by a nested ``with``, or
        transitively through a call) while lock A is held — must be
        acyclic.  Locks are identified project-wide: instance locks by
        ``<class>.<attr>``, module locks by their qualified name.

    Why:
        Two locks taken in opposite orders by two threads deadlock
        both forever; the freeze needs a precise interleaving, so it
        survives every test run and ships.  A static cycle check over
        the acquisition graph rules the whole class of hangs out
        before the query tier adds the second lock that makes it
        possible.

    Good::

        def transfer(self, other):
            first, second = sorted([self, other], key=id)
            with first._lock:
                with second._lock:        # one global order
                    ...

    Bad::

        def push(self):
            with self._lock:
                with _REGISTRY_LOCK: ...

        def drain(self):
            with _REGISTRY_LOCK:
                with self._lock: ...       # opposite order: deadlock
    """

    rule_id = "REP302"
    severity = Severity.ERROR
    description = (
        "the project-wide lock-acquisition graph (nested with "
        "statements + calls made while holding a lock) must be acyclic"
    )
    #: The acquisition graph spans every module, so any change can
    #: create or break a cycle anywhere.
    global_scope = True

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag cycles in the lock-acquisition graph with witnesses."""
        locks = _LockIndex(project, config)
        edges = self._acquisition_edges(project, locks)
        scope = set(_scoped_modules(project, config, modules))
        for cycle in self._cycles(edges):
            witness_edges = [
                (a, b)
                for a, b in zip(cycle, cycle[1:] + cycle[:1])
                if (a, b) in edges
            ]
            anchor = min(edges[e] for e in witness_edges)
            relpath, lineno, col, module = anchor
            if module not in scope:
                continue
            steps = "; ".join(
                f"{b.rsplit('.', 1)[-1]} taken while holding "
                f"{a.rsplit('.', 1)[-1]} at {edges[(a, b)][0]}:"
                f"{edges[(a, b)][1]}"
                for a, b in witness_edges
            )
            ring = " -> ".join(
                name.rsplit(".", 1)[-1] for name in cycle + cycle[:1]
            )
            yield self.project_finding(
                config,
                relpath,
                lineno,
                col,
                f"lock ordering cycle {ring} ({steps}); pick one "
                "global acquisition order",
            )

    def _acquisition_edges(
        self, project: ProjectModel, locks: _LockIndex
    ) -> Dict[Tuple[str, str], Tuple[str, int, int, str]]:
        """held-lock → acquired-lock edges with first witness site.

        Direct edges come from nested ``with`` facts; transitive ones
        from call sites executed under a lock whose callee's forward
        closure acquires other locks.
        """
        edges: Dict[Tuple[str, str], Tuple[str, int, int, str]] = {}

        def add(key: Tuple[str, str], site: Tuple[str, int, int, str]) -> None:
            if key[0] != key[1] and (key not in edges or site < edges[key]):
                edges[key] = site

        acquired = self._acquired_closure(project, locks)
        for module in sorted(project.modules):
            summary = project.modules[module]
            for fx_key, fx in _iter_effects(summary):
                for info in fx.withs:
                    inner = locks.canonical(module, summary, fx_key, info.expr)
                    if inner is None:
                        continue
                    for held in info.held:
                        outer = locks.canonical(
                            module, summary, fx_key, held
                        )
                        if outer is not None:
                            add(
                                (outer, inner),
                                (summary.relpath, info.lineno, info.col,
                                 module),
                            )
            for call in summary.calls:
                if not call.guards:
                    continue
                callee = project.resolve_call(summary, call)
                if callee is None:
                    continue
                inner_locks = acquired.get(callee)
                if not inner_locks:
                    continue
                for held in call.guards:
                    outer = locks.canonical(
                        module, summary, call.caller, held
                    )
                    if outer is None:
                        continue
                    for inner in sorted(inner_locks):
                        add(
                            (outer, inner),
                            (summary.relpath, call.lineno, call.col, module),
                        )
        return edges

    def _acquired_closure(
        self, project: ProjectModel, locks: _LockIndex
    ) -> Dict[str, Set[str]]:
        """Function qualname → locks acquired in its forward closure."""
        direct: Dict[str, Set[str]] = {}
        for module in sorted(project.modules):
            summary = project.modules[module]
            for fx_key, fx in _iter_effects(summary):
                node = _graph_node(summary, fx_key)
                for info in fx.withs:
                    canon = locks.canonical(module, summary, fx_key, info.expr)
                    if canon is not None:
                        direct.setdefault(node, set()).add(canon)
        graph = project.call_graph()
        closure: Dict[str, Set[str]] = {}

        def resolve(node: str, stack: Set[str]) -> Set[str]:
            if node in closure:
                return closure[node]
            if node in stack:
                return direct.get(node, set())
            stack.add(node)
            out = set(direct.get(node, set()))
            for callee in graph.get(node, ()):
                if callee in direct or callee in graph:
                    out |= resolve(callee, stack)
            stack.discard(node)
            closure[node] = out
            return out

        for node in sorted(set(graph) | set(direct)):
            resolve(node, set())
        return closure

    def _cycles(
        self, edges: Dict[Tuple[str, str], Tuple[str, int, int, str]]
    ) -> List[List[str]]:
        """Deterministic list of elementary lock cycles (as node lists).

        Strongly connected components of the acquisition graph; every
        SCC with more than one node (or a self-loop) is reported once,
        rotated so the lexicographically smallest lock leads.
        """
        graph: Dict[str, Set[str]] = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            work = [(v, iter(sorted(graph[v])))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = low[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(sorted(graph[child]))))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(component)

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)
        cycles: List[List[str]] = []
        for component in sccs:
            ordered = sorted(component)
            cycles.append(self._walk_cycle(ordered, graph))
        return sorted(cycles)

    def _walk_cycle(
        self, members: List[str], graph: Dict[str, Set[str]]
    ) -> List[str]:
        """One deterministic tour through an SCC, smallest node first."""
        inside = set(members)
        path = [members[0]]
        seen = {members[0]}
        current = members[0]
        while True:
            nxt = min(
                (n for n in graph[current] if n in inside), default=None
            )
            if nxt is None or nxt in seen:
                break
            path.append(nxt)
            seen.add(nxt)
            current = nxt
        return path


@register
class ResourceLifecycle(ProjectRule):
    """REP303 — OS handles are closed on every path or context-owned.

    Invariant:
        A handle from ``open()``, ``mmap.mmap``, or
        ``np.load(mmap_mode=...)`` bound to a local must be released on
        every path: a ``with`` block, ``contextlib.closing``, a
        ``try/finally`` close, or explicit ownership transfer (returned
        to the caller, passed into another call, or stored on the
        instance).  A close reachable only on the happy path does not
        count.

    Why:
        ``SpillStore`` streams mmap'd segments on every query; a
        handle leaked per-query exhausts the process's fd table under
        sustained load and takes the whole serving tier down — the
        classic slow-burn outage that never reproduces in short tests.
        An exception between acquire and close is enough to leak, so
        only structurally-guaranteed release passes.

    Good::

        def checksum(path):
            with open(path, "rb") as handle:
                return crc32(handle.read())

    Bad::

        def checksum(path):
            handle = open(path, "rb")
            value = crc32(handle.read())   # leak if read() raises
            handle.close()
            return value
    """

    rule_id = "REP303"
    severity = Severity.ERROR
    description = (
        "open()/mmap/np.load(mmap_mode=...) handles must be released "
        "via with/closing/try-finally or ownership transfer"
    )

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag resource acquisitions without guaranteed release."""
        for module in _scoped_modules(project, config, modules):
            summary = project.modules[module]
            for qualname, fx in _iter_effects(summary):
                where = (
                    "module level"
                    if qualname == MODULE_SCOPE
                    else f"{qualname.rsplit('.', 1)[-1]}()"
                )
                closed = set(fx.closed)
                finally_closed = set(fx.finally_closed)
                for site in fx.resources:
                    if site.managed:
                        continue
                    if site.name and site.name in finally_closed:
                        continue
                    handle = (
                        f"'{site.name}'" if site.name else "its handle"
                    )
                    if site.name and site.name in closed:
                        hint = (
                            f"{handle} is closed only on the happy "
                            "path; move the close into a finally block "
                            "or use a with statement"
                        )
                    else:
                        hint = (
                            f"{handle} is never closed on any path; "
                            "use a with statement, contextlib.closing, "
                            "or a try/finally"
                        )
                    yield self.project_finding(
                        config,
                        summary.relpath,
                        site.lineno,
                        site.col,
                        f"{site.callee}(...) at {where} acquires an OS "
                        f"handle but {hint}",
                    )


@register
class BlockingCallUnderLock(ProjectRule):
    """REP304 — no blocking IO while a lock is held.

    Invariant:
        While a recognized lock is held (``with self._lock:`` or a
        module-level lock), no call may reach a blocking operation:
        ``os.fsync``/``fdatasync``, ``os.replace``/``rename``,
        ``time.sleep``, ``shutil``/``subprocess`` helpers, a raw
        ``open()``, or any project function whose forward call closure
        performs fsyncs, replaces, or opens handles (e.g. a segment
        CRC scan).

    Why:
        A lock held across an fsync turns every concurrent reader into
        a disk-latency victim: the classic tail-latency killer where
        p99 jumps from microseconds to the flush time of the slowest
        device.  Durability work must happen outside the critical
        section — compute under the lock, publish after, or snapshot
        state under the lock and write it after release.

    Good::

        def commit(self):
            payload = self._serialize()    # IO outside the lock
            write_atomic(self._path, payload)
            with self._lock:
                self._generation += 1      # short critical section

    Bad::

        def commit(self):
            with self._lock:
                write_atomic(self._path, self._serialize())  # fsync
                self._generation += 1      # readers stall on the disk
    """

    rule_id = "REP304"
    severity = Severity.ERROR
    description = (
        "calls made while holding a lock must not reach blocking IO "
        "(fsync/replace/open/sleep or project code that does)"
    )

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag lock-guarded calls whose closure blocks on IO."""
        locks = _LockIndex(project, config)
        blocking_cache: Dict[str, Optional[str]] = {}
        for module in _scoped_modules(project, config, modules):
            summary = project.modules[module]
            for call in summary.calls:
                guard = next(
                    (
                        g
                        for g in call.guards
                        if locks.is_lock_expr(module, g)
                    ),
                    None,
                )
                if guard is None:
                    continue
                reason = self._blocking_reason(
                    project, summary, call, blocking_cache
                )
                if reason is None:
                    continue
                caller = (
                    "module level"
                    if call.caller == MODULE_SCOPE
                    else f"{call.caller.rsplit('.', 1)[-1]}()"
                )
                yield self.project_finding(
                    config,
                    summary.relpath,
                    call.lineno,
                    call.col,
                    f"{call.callee_expr}(...) at {caller} {reason} "
                    f"while '{guard}' is held; move the IO outside "
                    "the critical section",
                )

    def _blocking_reason(
        self,
        project: ProjectModel,
        summary: ModuleSummary,
        call: CallSite,
        cache: Dict[str, Optional[str]],
    ) -> Optional[str]:
        expr = call.callee_expr
        if expr in ("open", "io.open"):
            return "opens a file"
        resolved = project.resolve_call(summary, call) or project.resolve(
            summary.module, expr
        )
        target = resolved or expr
        if target in BLOCKING_QUALNAMES:
            return f"blocks ({target})"
        if resolved is not None and project.module_of(resolved) is not None:
            return self._closure_reason(project, resolved, cache)
        return None

    def _closure_reason(
        self,
        project: ProjectModel,
        qualname: str,
        cache: Dict[str, Optional[str]],
    ) -> Optional[str]:
        """Why a project function's forward closure blocks, if it does."""
        if qualname in cache:
            return cache[qualname]
        cache[qualname] = None  # cycle guard
        reason: Optional[str] = None
        module = project.module_of(qualname)
        fx = (
            project.modules[module].effects.get(qualname)
            if module is not None
            else None
        )
        if fx is not None:
            if fx.fsyncs:
                reason = f"reaches os.fsync (via {qualname})"
            elif fx.replaces:
                reason = f"reaches os.replace (via {qualname})"
            elif fx.resources:
                reason = f"opens OS handles (via {qualname})"
            elif fx.writes:
                reason = f"performs filesystem writes (via {qualname})"
        if reason is None:
            graph = project.call_graph()
            for callee in sorted(graph.get(qualname, ())):
                if callee in BLOCKING_QUALNAMES:
                    reason = f"reaches {callee} (via {qualname})"
                    break
                if project.module_of(callee) is not None:
                    reason = self._closure_reason(project, callee, cache)
                    if reason is not None:
                        break
        cache[qualname] = reason
        return reason


@register
class LazyInitRace(ProjectRule):
    """REP305 — lazy-init fills of shared attributes happen under a lock.

    Invariant:
        A ``if self._x is None: self._x = ...`` (or ``if not
        self._x:``) check-then-fill in a spawn-reachable method must
        execute with a recognized lock held; the test and the
        assignment are otherwise not atomic.

    Why:
        Two threads observing ``None`` simultaneously both run the
        expensive build and the loser's result is silently discarded —
        or, worse, a half-published object escapes to the winner.  The
        generation-keyed caches this codebase leans on are exactly
        such fills; under the query tier's thread pool the race moves
        from theoretical to every-busy-second.

    Good::

        def index(self):
            with self._lock:
                if self._index is None:
                    self._index = self._build_index()
                return self._index

    Bad::

        def index(self):
            if self._index is None:             # two threads both pass
                self._index = self._build_index()
            return self._index
    """

    rule_id = "REP305"
    severity = Severity.ERROR
    description = (
        "check-then-fill lazy initialization of instance attributes "
        "in spawn-reachable methods must hold a lock"
    )
    #: Spawn sites anywhere make a method reachable, so the dirty cone
    #: cannot bound this.
    global_scope = True

    def check(
        self,
        project: ProjectModel,
        config: AnalysisConfig,
        modules: Optional[Iterable[str]] = None,
    ) -> Iterable[Finding]:
        """Flag unguarded lazy-init fills on spawn-reachable paths."""
        locks = _LockIndex(project, config)
        chains = _spawn_reachable(project, config)
        for module in _scoped_modules(project, config, modules):
            summary = project.modules[module]
            for qualname, fx in _iter_effects(summary):
                if qualname == MODULE_SCOPE:
                    continue
                name = qualname.rsplit(".", 1)[-1]
                if name in _CONSTRUCTOR_METHODS:
                    continue
                chain = chains.get(qualname)
                if chain is None:
                    continue
                for site in fx.lazy_inits:
                    if locks.is_guarded(module, site.guards):
                        continue
                    via = " -> ".join(chain)
                    yield self.project_finding(
                        config,
                        summary.relpath,
                        site.lineno,
                        site.col,
                        f"{name}() lazily initializes "
                        f"'{site.target}' without a lock on a "
                        f"spawn-reachable path ({via}); guard the "
                        "check-then-fill with the instance lock",
                    )
