"""Common scaffolding for DGA family implementations.

A family is a deterministic function ``(seed, day_index) -> domains``:
the same botnet configuration generates the same candidate domains on
the same day on every infected machine, which is exactly what lets a
botmaster pre-register a handful of them — and what makes the rest
show up as synchronized NXDomain query bursts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.dns.name import DomainName
from repro.errors import ConfigError


@dataclass(frozen=True)
class DgaSample:
    """One generated domain with its provenance."""

    domain: DomainName
    family: str
    day_index: int


class DgaFamily(abc.ABC):
    """Base class for one malware family's generation algorithm.

    Subclasses implement :meth:`generate_labels`; the base class
    handles TLD rotation and :class:`DomainName` construction.
    """

    #: Family name, matching the malware it is modelled on.
    name: str = "abstract"
    #: TLDs the family rotates through.
    tlds: Tuple[str, ...] = ("com",)
    #: How many domains the family derives per day.
    domains_per_day: int = 50

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    @abc.abstractmethod
    def generate_labels(self, day_index: int, count: int) -> List[str]:
        """Generate ``count`` second-level labels for day ``day_index``."""

    def domains_for_day(self, day_index: int, count: int = 0) -> List[DgaSample]:
        """Generate the day's domains (default: ``domains_per_day``)."""
        if day_index < 0:
            raise ConfigError("day_index must be non-negative")
        n = count if count > 0 else self.domains_per_day
        labels = self.generate_labels(day_index, n)
        samples = []
        for position, label in enumerate(labels):
            tld = self.tlds[position % len(self.tlds)]
            samples.append(
                DgaSample(
                    domain=DomainName(f"{label}.{tld}"),
                    family=self.name,
                    day_index=day_index,
                )
            )
        return samples

    def stream(self, start_day: int, end_day: int) -> Iterator[DgaSample]:
        """All samples for the half-open day range [start, end)."""
        for day in range(start_day, end_day):
            yield from self.domains_for_day(day)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


class Lcg:
    """A 32-bit linear congruential generator.

    Real DGAs overwhelmingly use small hand-rolled LCGs (they must run
    identically on every infected host without library dependencies);
    families here share this one with family-specific multipliers.
    """

    MASK = 0xFFFFFFFF

    def __init__(self, state: int, multiplier: int = 1664525, increment: int = 1013904223):
        self.state = state & self.MASK
        self.multiplier = multiplier
        self.increment = increment

    def next(self) -> int:
        self.state = (self.state * self.multiplier + self.increment) & self.MASK
        return self.state

    def next_in_range(self, low: int, high: int) -> int:
        """Uniform-ish integer in [low, high]."""
        if high < low:
            raise ConfigError("high must be >= low")
        return low + self.next() % (high - low + 1)

    def pick(self, alphabet: Sequence[str]) -> str:
        return alphabet[self.next() % len(alphabet)]
