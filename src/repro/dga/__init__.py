"""Domain Generation Algorithms: family generators and an in-line detector.

The paper flags ~2.77 M (3%) of the 91 M expired NXDomains as DGA
domains using Palo Alto Networks' proprietary in-line classifier
(US patent 11,729,134), and cites Plohmann et al.'s finding that only
0.62% of DGA domains are ever registered — the rest show up purely as
NXDomain queries from bots polling for their C&C rendezvous.

This package provides both sides of that pipeline:

- :mod:`repro.dga.families` — twelve generators modelled on published
  malware DGAs (Conficker, Kraken, Banjori, ...), used by the workload
  layer to inject realistic DGA query streams into the passive DNS
  trace;
- :mod:`repro.dga.detector` — a feature-based classifier in the style
  of FANCI (Schüppen et al., USENIX Security '18): hand-rolled
  logistic regression over lexical features, trained on generated
  samples, standing in for the commercial detector.
"""

from repro.dga.base import DgaFamily, DgaSample
from repro.dga.detector import DetectorMetrics, DgaDetector, TrainedModel
from repro.dga.families import ALL_FAMILIES, family_by_name
from repro.dga.features import FEATURE_NAMES, extract_features

__all__ = [  # repro: noqa[REP104] classifier I/O record types; exported for annotations
    "ALL_FAMILIES",
    "DetectorMetrics",
    "DgaDetector",
    "DgaFamily",
    "DgaSample",
    "FEATURE_NAMES",
    "TrainedModel",
    "extract_features",
    "family_by_name",
]
