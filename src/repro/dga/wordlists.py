"""Word material for dictionary-based DGAs and benign name synthesis.

Dictionary DGAs (Suppobox, Matsnu) concatenate natural-language words
precisely to evade character-statistics detectors; the same word pools
also seed the *benign* training names for the detector, which keeps the
classification problem honest — the detector cannot win by spotting
that benign names use words and DGA names don't.
"""

from __future__ import annotations

from typing import Tuple

#: Common English nouns (used by Matsnu-style noun-verb-noun names).
NOUNS: Tuple[str, ...] = (
    "time", "year", "people", "way", "day", "man", "thing", "woman", "life",
    "child", "world", "school", "state", "family", "student", "group",
    "country", "problem", "hand", "part", "place", "case", "week", "company",
    "system", "program", "question", "work", "number", "night", "point",
    "home", "water", "room", "mother", "area", "money", "story", "fact",
    "month", "lot", "right", "study", "book", "eye", "job", "word",
    "business", "issue", "side", "kind", "head", "house", "service",
    "friend", "father", "power", "hour", "game", "line", "end", "member",
    "law", "car", "city", "community", "name", "president", "team", "minute",
    "idea", "kid", "body", "info", "back", "parent", "face", "others",
    "level", "office", "door", "health", "person", "art", "war", "history",
    "party", "result", "change", "morning", "reason", "research", "girl",
    "guy", "moment", "air", "teacher", "force", "education",
)

#: Common English verbs (used by Suppobox/Matsnu-style names).
VERBS: Tuple[str, ...] = (
    "be", "have", "do", "say", "get", "make", "go", "know", "take", "see",
    "come", "think", "look", "want", "give", "use", "find", "tell", "ask",
    "seem", "feel", "try", "leave", "call", "work", "need", "become", "mean",
    "keep", "let", "begin", "help", "talk", "turn", "start", "show", "hear",
    "play", "run", "move", "like", "live", "believe", "hold", "bring",
    "happen", "write", "provide", "sit", "stand", "lose", "pay", "meet",
    "include", "continue", "set", "learn", "lead", "understand", "watch",
    "follow", "stop", "create", "speak", "read", "allow", "add", "spend",
    "grow", "open", "walk", "win", "offer", "remember", "love", "consider",
    "appear", "buy", "wait", "serve", "send", "expect", "build", "stay",
    "fall", "cut", "reach", "kill", "remain",
)

#: Adjective/brandable fragments (benign name synthesis).
ADJECTIVES: Tuple[str, ...] = (
    "good", "new", "first", "last", "long", "great", "little", "own",
    "other", "old", "big", "high", "small", "large", "next", "early",
    "young", "important", "few", "public", "bad", "same", "able", "best",
    "better", "free", "true", "easy", "full", "strong", "special", "whole",
    "real", "major", "happy", "smart", "quick", "bright", "fresh", "prime",
    "rapid", "solid", "super", "ultra", "mega", "micro", "digital", "cyber",
    "cloud", "net", "web", "online", "global", "local", "daily", "direct",
)

#: Suffix fragments common in legitimately registered names.
BRAND_SUFFIXES: Tuple[str, ...] = (
    "ly", "ify", "hub", "lab", "labs", "app", "apps", "base", "box", "bot",
    "kit", "zone", "spot", "mart", "shop", "store", "cast", "desk", "dock",
    "feed", "flow", "gram", "io", "land", "link", "list", "loop", "mind",
    "nest", "pad", "path", "pix", "port", "post", "pro", "rank", "scope",
    "sense", "space", "stack", "tap", "tech", "wave", "wise", "works",
)
