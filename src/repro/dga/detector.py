"""Feature-based DGA detector.

A hand-rolled, dependency-light logistic regression over the lexical
features of :mod:`repro.dga.features`, standing in for the commercial
in-line classifier the paper used.  Training data is generated, not
shipped: positives from the family generators, negatives from the
benign corpus — see :meth:`DgaDetector.train_default`.

The decision threshold is an explicit parameter because the paper's
3%-of-expired-domains figure depends on operating-point choice; the
threshold ablation bench sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dns.name import DomainName
from repro.dga.base import DgaFamily
from repro.dga.corpus import benign_domains
from repro.dga.families import ALL_FAMILIES
from repro.dga.features import FEATURE_NAMES, extract_feature_matrix
from repro.rand import make_rng
from repro.errors import ConfigError

DomainLike = Union[DomainName, str]


@dataclass
class TrainedModel:
    """Frozen parameters of a trained detector."""

    weights: np.ndarray
    bias: float
    feature_mean: np.ndarray
    feature_std: np.ndarray

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        standardized = (features - self.feature_mean) / self.feature_std
        return standardized @ self.weights + self.bias

    def probabilities(self, features: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_scores(features))


@dataclass
class DetectorMetrics:
    """Operating-point quality measures."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )
        return (self.true_positives + self.true_negatives) / total if total else 0.0

    @property
    def false_positive_rate(self) -> float:
        denom = self.false_positives + self.true_negatives
        return self.false_positives / denom if denom else 0.0


class DgaDetector:
    """Logistic-regression DGA classifier.

    >>> detector = DgaDetector.train_default(seed=7)
    >>> detector.is_dga("xkqzvwplfm.com")
    True
    """

    def __init__(self, model: TrainedModel, threshold: float = 0.5) -> None:
        if not 0.0 < threshold < 1.0:
            raise ConfigError("threshold must lie strictly between 0 and 1")
        self.model = model
        self.threshold = threshold

    # -- training --------------------------------------------------------

    @classmethod
    def train(
        cls,
        dga_domains: Sequence[DomainLike],
        benign: Sequence[DomainLike],
        threshold: float = 0.5,
        epochs: int = 300,
        learning_rate: float = 0.1,
        l2: float = 1e-3,
        seed: int = 0,
    ) -> "DgaDetector":
        """Fit logistic regression by full-batch gradient descent."""
        if not dga_domains or not benign:
            raise ConfigError("both classes need at least one sample")
        features = extract_feature_matrix(list(dga_domains) + list(benign))
        labels = np.concatenate(
            [np.ones(len(dga_domains)), np.zeros(len(benign))]
        )
        mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0] = 1.0
        standardized = (features - mean) / std

        rng = make_rng(seed)
        weights = rng.normal(0, 0.01, size=standardized.shape[1])
        bias = 0.0
        n = len(labels)
        for _ in range(epochs):
            probabilities = _sigmoid(standardized @ weights + bias)
            gradient = standardized.T @ (probabilities - labels) / n + l2 * weights
            bias_gradient = float(np.mean(probabilities - labels))
            weights -= learning_rate * gradient
            bias -= learning_rate * bias_gradient
        model = TrainedModel(weights, bias, mean, std)
        return cls(model, threshold)

    @classmethod
    def train_default(
        cls,
        seed: int = 0,
        samples_per_family: int = 400,
        benign_count: Optional[int] = None,
        threshold: float = 0.5,
    ) -> "DgaDetector":
        """Train on generated samples from every family + benign corpus."""
        positives: List[DomainName] = []
        for family_cls in ALL_FAMILIES:
            family: DgaFamily = family_cls(seed=seed)
            day = 0
            collected = 0
            while collected < samples_per_family:
                batch = family.domains_for_day(day)
                for sample in batch:
                    positives.append(sample.domain)
                    collected += 1
                    if collected >= samples_per_family:
                        break
                day += 1
        negatives = benign_domains(
            make_rng(seed + 1),
            benign_count if benign_count is not None else len(positives),
        )
        return cls.train(positives, negatives, threshold=threshold, seed=seed)

    # -- inference ------------------------------------------------------------

    def probability(self, domain: DomainLike) -> float:
        """P(domain is DGA-generated)."""
        return float(self.model.probabilities(extract_feature_matrix([domain]))[0])

    def probabilities(self, domains: Sequence[DomainLike]) -> np.ndarray:
        return self.model.probabilities(extract_feature_matrix(list(domains)))

    def is_dga(self, domain: DomainLike) -> bool:
        return self.probability(domain) >= self.threshold

    def classify(self, domains: Sequence[DomainLike]) -> List[bool]:
        if not domains:
            return []
        return list(self.probabilities(domains) >= self.threshold)

    # -- evaluation ----------------------------------------------------------

    def evaluate(
        self,
        dga_domains: Sequence[DomainLike],
        benign: Sequence[DomainLike],
        threshold: Optional[float] = None,
    ) -> DetectorMetrics:
        """Confusion-matrix metrics at ``threshold`` (default: own)."""
        cut = threshold if threshold is not None else self.threshold
        dga_probs = self.probabilities(dga_domains) if dga_domains else np.empty(0)
        benign_probs = self.probabilities(benign) if benign else np.empty(0)
        return DetectorMetrics(
            true_positives=int((dga_probs >= cut).sum()),
            false_negatives=int((dga_probs < cut).sum()),
            false_positives=int((benign_probs >= cut).sum()),
            true_negatives=int((benign_probs < cut).sum()),
        )

    def threshold_sweep(
        self,
        dga_domains: Sequence[DomainLike],
        benign: Sequence[DomainLike],
        thresholds: Sequence[float],
    ) -> List[Tuple[float, DetectorMetrics]]:
        """Metrics at each threshold (the ablation bench's core)."""
        return [
            (t, self.evaluate(dga_domains, benign, threshold=t)) for t in thresholds
        ]

    def feature_importances(self) -> List[Tuple[str, float]]:
        """(feature, |weight|) pairs, most influential first."""
        pairs = list(zip(FEATURE_NAMES, np.abs(self.model.weights)))
        return sorted(pairs, key=lambda p: p[1], reverse=True)


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(values, -60, 60)))
