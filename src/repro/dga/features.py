"""Lexical feature extraction for DGA detection (FANCI-style).

Features operate on the second-level label only (the part the
generation algorithm controls).  The set mirrors the published
NXDomain-classification literature: length and entropy separate
random-character families; dictionary-coverage and bigram-likelihood
features catch wordlist families like Suppobox/Matsnu that entropy
misses.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Union

import numpy as np

from repro.dns.name import DomainName
from repro.dga.wordlists import ADJECTIVES, BRAND_SUFFIXES, NOUNS, VERBS

FEATURE_NAMES = (
    "length",
    "entropy",
    "digit_ratio",
    "vowel_ratio",
    "max_consonant_run",
    "unique_char_ratio",
    "bigram_logprob",
    "word_coverage",
    "hyphen_count",
    "repeat_ratio",
    "trigram_diversity",
    "starts_with_digit",
)

_VOWELS = frozenset("aeiou")
_WORDS = sorted(
    set(NOUNS) | set(VERBS) | set(ADJECTIVES) | set(BRAND_SUFFIXES),
    key=len,
    reverse=True,
)


def _build_bigram_model() -> Dict[str, float]:
    """Log-probability table of bigrams in English word material.

    Laplace-smoothed over the a-z alphabet; unseen bigrams get the
    smoothed floor, so random-character labels score far below
    dictionary-built ones.
    """
    counts: Counter = Counter()
    total = 0
    for word in set(NOUNS) | set(VERBS) | set(ADJECTIVES):
        for i in range(len(word) - 1):
            counts[word[i : i + 2]] += 1
            total += 1
    vocabulary = 26 * 26
    model = {}
    for first in "abcdefghijklmnopqrstuvwxyz":
        for second in "abcdefghijklmnopqrstuvwxyz":
            bigram = first + second
            model[bigram] = math.log(
                (counts.get(bigram, 0) + 1) / (total + vocabulary)
            )
    return model


_BIGRAM_MODEL = _build_bigram_model()
_BIGRAM_FLOOR = math.log(1 / (sum(1 for _ in _BIGRAM_MODEL) + 1))


def shannon_entropy(text: str) -> float:
    """Character-level Shannon entropy in bits."""
    if not text:
        return 0.0
    counts = Counter(text)
    n = len(text)
    return -sum((c / n) * math.log2(c / n) for c in counts.values())


def max_consonant_run(text: str) -> int:
    """Length of the longest run of consecutive consonant letters."""
    best = run = 0
    for char in text:
        if char.isalpha() and char not in _VOWELS:
            run += 1
            best = max(best, run)
        else:
            run = 0
    return best


def mean_bigram_logprob(text: str) -> float:
    """Average English-bigram log-probability of the label."""
    bigrams = [text[i : i + 2] for i in range(len(text) - 1)]
    scored = [_BIGRAM_MODEL.get(b, _BIGRAM_FLOOR) for b in bigrams]
    if not scored:
        return _BIGRAM_FLOOR
    return sum(scored) / len(scored)


def dictionary_coverage(text: str) -> float:
    """Fraction of characters covered by greedy dictionary matching.

    Scans left to right, always taking the longest word that matches at
    the current position; uncovered characters advance by one.  Word-
    concatenation DGAs score near 1.0; random labels score near 0.
    """
    if not text:
        return 0.0
    covered = 0
    position = 0
    while position < len(text):
        match = next(
            (w for w in _WORDS if len(w) >= 2 and text.startswith(w, position)),
            None,
        )
        if match is not None:
            covered += len(match)
            position += len(match)
        else:
            position += 1
    return covered / len(text)


def extract_features(domain: Union[DomainName, str]) -> np.ndarray:
    """The 12-dimensional feature vector for one domain.

    Accepts a full domain or a bare label; only the second-level label
    is analyzed.
    """
    if isinstance(domain, DomainName):
        label = domain.sld or domain.tld
    else:
        name = str(domain).strip(".")
        label = name.split(".")[-2] if "." in name else name
    label = label.lower()
    length = len(label)
    letters = sum(1 for c in label if c.isalpha())
    digits = sum(1 for c in label if c.isdigit())
    trigrams = {label[i : i + 3] for i in range(length - 2)}
    counts = Counter(label)
    repeats = sum(c - 1 for c in counts.values())
    return np.array(
        [
            length,
            shannon_entropy(label),
            digits / length if length else 0.0,
            (sum(1 for c in label if c in _VOWELS) / letters) if letters else 0.0,
            max_consonant_run(label),
            len(counts) / length if length else 0.0,
            mean_bigram_logprob(label),
            dictionary_coverage(label),
            label.count("-"),
            repeats / length if length else 0.0,
            len(trigrams) / max(length - 2, 1),
            1.0 if label[:1].isdigit() else 0.0,
        ],
        dtype=float,
    )


def extract_feature_matrix(domains: List[Union[DomainName, str]]) -> np.ndarray:
    """Feature vectors for many domains, stacked row-wise."""
    if not domains:
        return np.empty((0, len(FEATURE_NAMES)))
    return np.vstack([extract_features(d) for d in domains])
