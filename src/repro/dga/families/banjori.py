"""Banjori-style DGA.

Banjori is unusual: instead of generating fresh labels it *mutates a
seed domain*, rewriting only the first four characters with a rolling
arithmetic over the previous name.  Successive domains therefore share
a long constant tail — a fingerprint no entropy feature catches, which
is why detectors need more than randomness scores.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily


def _map_to_lowercase_letter(value: int) -> str:
    return chr(ord("a") + value % 26)


class Banjori(DgaFamily):
    name = "banjori"
    tlds = ("com",)
    domains_per_day = 40

    #: Mutated seed label (the real malware shipped one per campaign).
    seed_label = "earnestnessbiophysicalohax"

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        # Advance the rolling mutation day_index*count steps so each
        # day picks up where the previous left off, like the malware.
        label = self.seed_label
        labels = []
        total_steps = day_index * self.domains_per_day + count
        for step in range(total_steps):
            label = self._next_label(label, step)
            if step >= day_index * self.domains_per_day:
                labels.append(label)
        return labels[:count]

    def _next_label(self, label: str, step: int) -> str:
        chars = list(label)
        checksum = (sum(ord(c) for c in label) + self.seed + step) & 0xFFFF
        chars[0] = _map_to_lowercase_letter(checksum)
        chars[1] = _map_to_lowercase_letter(checksum >> 3)
        chars[2] = _map_to_lowercase_letter(checksum >> 5)
        chars[3] = _map_to_lowercase_letter(checksum >> 7)
        return "".join(chars)
