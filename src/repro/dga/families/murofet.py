"""Murofet/LICAT-style DGA.

Murofet (a Zeus variant) derived each label by summing scaled MD5-ish
byte mixes of the date, emitting letters only, length ~12-16, rotating
through five TLDs — an early high-volume date-locked family.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily


class Murofet(DgaFamily):
    name = "murofet"
    tlds = ("biz", "info", "org", "net", "com")
    domains_per_day = 60

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        labels = []
        year_ish = 2014 + day_index // 365
        month_ish = 1 + (day_index // 30) % 12
        day_ish = 1 + day_index % 30
        for position in range(count):
            chars = []
            state = (self.seed + position * 7) & 0xFFFFFFFF
            length = 12 + (day_index + position) % 5
            for i in range(length):
                # Byte-mix of date fields, as in the malware's loop.
                state = (
                    state * 0x35
                    + year_ish * (i + 1)
                    + month_ish * (i + 3)
                    + day_ish * (i + 5)
                    + position
                ) & 0xFFFFFFFF
                chars.append(chr(ord("a") + state % 25))
            labels.append("".join(chars))
        return labels
