"""Qakbot-style DGA.

Qakbot seeded a Mersenne-ish PRNG from a CRC over the date string plus
a campaign salt, generating 8-25 character labels over five TLDs in
ten-day epochs.
"""

from __future__ import annotations

import zlib
from typing import List

from repro.dga.base import DgaFamily, Lcg


class Qakbot(DgaFamily):
    name = "qakbot"
    tlds = ("com", "net", "org", "info", "biz")
    domains_per_day = 50

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        epoch = day_index // 10  # ten-day generation period
        date_blob = f"qakbot-{epoch}-{self.seed}".encode("ascii")
        lcg = Lcg(zlib.crc32(date_blob) & 0xFFFFFFFF, multiplier=22695477)
        labels = []
        for _ in range(count):
            length = lcg.next_in_range(8, 25)
            labels.append(
                "".join(chr(ord("a") + lcg.next() % 26) for _ in range(length))
            )
        return labels
