"""Locky-style DGA.

Locky's generator mixed the date with per-campaign constants through
shift-xor rounds, producing 7-11 character labels rotated through a
mid-sized ccTLD-heavy suffix list that changed per variant.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily


class Locky(DgaFamily):
    name = "locky"
    tlds = ("ru", "info", "biz", "click", "work", "pl")
    domains_per_day = 12

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        labels = []
        for position in range(count):
            state = (self.seed ^ 0xB11A2F7E) & 0xFFFFFFFF
            # Shift-xor mixing of date and position, Locky-fashion.
            state = (state + day_index * 0x1000193) & 0xFFFFFFFF
            state ^= (state << 13) & 0xFFFFFFFF
            state ^= state >> 17
            state = (state + position * 0x85EBCA6B) & 0xFFFFFFFF
            state ^= (state << 5) & 0xFFFFFFFF
            length = 7 + state % 5
            chars = []
            for _ in range(length):
                state ^= (state << 13) & 0xFFFFFFFF
                state ^= state >> 17
                state ^= (state << 5) & 0xFFFFFFFF
                state &= 0xFFFFFFFF
                chars.append(chr(ord("a") + state % 25))
            labels.append("".join(chars))
        return labels
