"""Matsnu-style dictionary DGA.

Matsnu concatenated dictionary verbs and nouns into 24+ character
labels under .com, explicitly to defeat character-frequency detectors.
Its fingerprint is *length* plus word structure, not entropy.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily, Lcg
from repro.dga.wordlists import NOUNS, VERBS


class Matsnu(DgaFamily):
    name = "matsnu"
    tlds = ("com",)
    domains_per_day = 10

    MIN_LENGTH = 24

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        lcg = Lcg((self.seed + day_index * 0x9E3779B9) & 0xFFFFFFFF)
        labels = []
        for _ in range(count):
            parts: List[str] = []
            # Alternate verb/noun until the minimum length is reached.
            while sum(len(p) for p in parts) < self.MIN_LENGTH:
                pool = VERBS if len(parts) % 2 == 0 else NOUNS
                parts.append(pool[lcg.next() % len(pool)])
            labels.append("".join(parts)[:40])
        return labels
