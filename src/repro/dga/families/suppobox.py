"""Suppobox-style dictionary DGA.

Suppobox concatenated exactly two English words per label, drawn from
shipped wordlists with a time-derived index — the canonical detector-
evading dictionary family the paper's 0.62%-registered statistic (via
Plohmann et al.) includes.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily, Lcg
from repro.dga.wordlists import NOUNS, VERBS


class Suppobox(DgaFamily):
    name = "suppobox"
    tlds = ("net", "ru", "com")
    domains_per_day = 85

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        lcg = Lcg((self.seed ^ 0x517E1E77) + day_index * 512 & 0xFFFFFFFF)
        labels = []
        for _ in range(count):
            first = VERBS[lcg.next() % len(VERBS)]
            second = NOUNS[lcg.next() % len(NOUNS)]
            labels.append(first + second)
        return labels
