"""Simda-style DGA.

Simda built pronounceable labels from fixed consonant-vowel syllable
tables ("qe", "tu", "pa", ...), making names that pass casual human
inspection; length is short (6-12) and the TLD set tiny.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily, Lcg

_SYLLABLES = (
    "qe", "tu", "pa", "lo", "mi", "ve", "ry", "da", "no", "su",
    "gi", "ka", "be", "fo", "xa", "ze", "wi", "hu", "ce", "ny",
)


class Simda(DgaFamily):
    name = "simda"
    tlds = ("com", "info", "eu")
    domains_per_day = 20

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        lcg = Lcg((self.seed * 0x5851F42D + day_index) & 0xFFFFFFFF)
        labels = []
        for _ in range(count):
            syllable_count = lcg.next_in_range(3, 6)
            labels.append(
                "".join(lcg.pick(_SYLLABLES) for _ in range(syllable_count))
            )
        return labels
