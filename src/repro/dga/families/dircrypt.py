"""DirCrypt-style DGA.

DirCrypt (ransomware) generated 8-20 character all-letter labels with a
plain LCG under .com only — the archetypal "random letters dot com"
family and the easiest fingerprint for entropy-based detectors.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily, Lcg


class Dircrypt(DgaFamily):
    name = "dircrypt"
    tlds = ("com",)
    domains_per_day = 30

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        lcg = Lcg((self.seed + 0x4A21 * (day_index + 1)) & 0xFFFFFFFF)
        labels = []
        for _ in range(count):
            length = lcg.next_in_range(8, 20)
            labels.append(
                "".join(chr(ord("a") + lcg.next() % 26) for _ in range(length))
            )
        return labels
