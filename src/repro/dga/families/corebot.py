"""Corebot-style DGA.

Corebot drew labels from a mixed letters+digits alphabet (``a``-``y``
plus digits, skipping ``z``) with an LCG, lengths 12-23, under a single
dynamic-DNS suffix.  The digit admixture raises its digit-ratio
feature well above benign names.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily, Lcg

_ALPHABET = "abcdefghijklmnopqrstuvwxy0123456789"


class Corebot(DgaFamily):
    name = "corebot"
    # The real malware used the ddns.net dynamic-DNS suffix; the study
    # operates on registrable (second-level) domains, so we keep the
    # label under .net directly to stay within that model.
    tlds = ("net",)
    domains_per_day = 40

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        lcg = Lcg(
            (0x10ADB331 + day_index * 53 + self.seed) & 0xFFFFFFFF,
            multiplier=1103515245,
            increment=12345,
        )
        labels = []
        for _ in range(count):
            length = lcg.next_in_range(12, 23)
            labels.append("".join(lcg.pick(_ALPHABET) for _ in range(length)))
        return labels
