"""Ramnit-style DGA.

Ramnit's generator squares its state modulo a large prime and extracts
letters from the high bits — distinctive in that its stream is seeded
once per campaign, not per day, so the *same* domain list is polled
every day (modelled by ignoring all but the slow epoch component).
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily

_MODULUS = 2**31 - 1


class Ramnit(DgaFamily):
    name = "ramnit"
    tlds = ("com",)
    domains_per_day = 25

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        # Campaign-seeded: day only shifts the window, slowly.
        window = day_index // 90
        state = (self.seed % _MODULUS) or 0xD5A2
        labels = []
        skip = window * count
        for position in range(skip + count):
            state = (state * state) % _MODULUS or 0xD5A2
            length = 8 + state % 9
            chars = []
            inner = state
            for _ in range(length):
                inner = (inner * inner) % _MODULUS or 0x1D5A2
                chars.append(chr(ord("a") + inner % 26))
            if position >= skip:
                labels.append("".join(chars))
        return labels
