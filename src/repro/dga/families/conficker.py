"""Conficker-style DGA.

Conficker.C generated 50,000 candidate domains per day by seeding a
PRNG from the current date and emitting short (4-10 character) lowercase
labels across a large TLD set.  The short labels and wide TLD rotation
are its fingerprint.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily, Lcg


class Conficker(DgaFamily):
    name = "conficker"
    tlds = ("com", "net", "org", "info", "biz", "cc", "cn", "ws")
    domains_per_day = 100

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        # Date-derived seed: every bot computes the same stream per day.
        lcg = Lcg((day_index * 0x5DEECE66 + self.seed) & 0xFFFFFFFF)
        labels = []
        for _ in range(count):
            length = lcg.next_in_range(4, 10)
            labels.append(
                "".join(chr(ord("a") + lcg.next() % 26) for _ in range(length))
            )
        return labels
