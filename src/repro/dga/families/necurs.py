"""Necurs-style DGA.

Necurs generated 2,048 domains per four-day period with a multiply-xor
PRNG, labels 8-21 characters over 43 TLDs; its four-day epoch (rather
than daily) is modelled by deriving the seed from ``day_index // 4``.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily


class Necurs(DgaFamily):
    name = "necurs"
    tlds = (
        "com", "net", "org", "info", "biz", "ru", "de", "uk", "nl", "fr",
        "in", "pl", "se", "tw", "jp", "kr",
    )
    domains_per_day = 48

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        epoch = day_index // 4  # four-day generation period
        labels = []
        for position in range(count):
            state = (self.seed + epoch * 0xB851EB85 + position) & 0xFFFFFFFF
            length = 8 + self._rand_step(state) % 14
            chars = []
            for _ in range(length):
                state = self._rand_step(state)
                chars.append(chr(ord("a") + state % 25))
            labels.append("".join(chars))
        return labels

    @staticmethod
    def _rand_step(state: int) -> int:
        state = (state * 0x41C64E6D + 0x3039) & 0xFFFFFFFF
        state ^= state >> 15
        return state & 0xFFFFFFFF
