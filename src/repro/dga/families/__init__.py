"""The twelve DGA family implementations.

Each module models the published generation algorithm of one malware
family closely enough to reproduce its *lexical fingerprint* (alphabet,
length distribution, TLD rotation, dictionary vs random construction),
which is what both the detector and the passive-DNS workload care
about.  Chen et al. (CCS '17), cited by the paper, uncovered 12 DGA
types from NXDomain data — hence twelve families here.
"""

from typing import Dict, List, Type

from repro.dga.base import DgaFamily
from repro.dga.families.banjori import Banjori
from repro.dga.families.conficker import Conficker
from repro.dga.families.corebot import Corebot
from repro.dga.families.dircrypt import Dircrypt
from repro.dga.families.kraken import Kraken
from repro.dga.families.locky import Locky
from repro.dga.families.matsnu import Matsnu
from repro.dga.families.murofet import Murofet
from repro.dga.families.necurs import Necurs
from repro.dga.families.qakbot import Qakbot
from repro.dga.families.ramnit import Ramnit
from repro.dga.families.simda import Simda
from repro.dga.families.suppobox import Suppobox
from repro.errors import UnknownKeyError

ALL_FAMILIES: List[Type[DgaFamily]] = [
    Banjori,
    Conficker,
    Corebot,
    Dircrypt,
    Kraken,
    Locky,
    Matsnu,
    Murofet,
    Necurs,
    Qakbot,
    Ramnit,
    Simda,
    Suppobox,
]

_BY_NAME: Dict[str, Type[DgaFamily]] = {cls.name: cls for cls in ALL_FAMILIES}


def family_by_name(name: str) -> Type[DgaFamily]:
    """Look up a family class by its malware name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise UnknownKeyError(
            f"unknown DGA family {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


__all__ = ["ALL_FAMILIES", "family_by_name"] + [cls.__name__ for cls in ALL_FAMILIES]
