"""Kraken/Bobax-style DGA.

Kraken built pronounceable-ish labels by alternating draws from a
consonant-weighted alphabet and appending one of a few fixed suffixes
("-land" style affixes in some variants), over dynamic-DNS-ish TLDs.
"""

from __future__ import annotations

from typing import List

from repro.dga.base import DgaFamily, Lcg

_CONSONANTS = "bcdfghklmnprstvz"
_VOWELS = "aeiou"
_SUFFIXES = ("", "", "", "dns", "net", "box")


class Kraken(DgaFamily):
    name = "kraken"
    tlds = ("com", "net", "tv", "cc")
    domains_per_day = 32

    def generate_labels(self, day_index: int, count: int) -> List[str]:
        lcg = Lcg((self.seed ^ (day_index * 0x1B0CADE1)) & 0xFFFFFFFF, multiplier=69069)
        labels = []
        for _ in range(count):
            pairs = lcg.next_in_range(3, 5)
            chars = []
            for _ in range(pairs):
                chars.append(lcg.pick(_CONSONANTS))
                chars.append(lcg.pick(_VOWELS))
            label = "".join(chars) + lcg.pick(_SUFFIXES)
            labels.append(label)
        return labels
