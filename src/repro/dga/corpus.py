"""Benign domain-name synthesis.

Produces the *negative* class for detector training and the benign
population of the passive DNS workload: brandable word mash-ups,
word+suffix names, personal-name-ish strings, and the occasional
digit-bearing name — the registration patterns actually seen in zone
files.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dns.name import DomainName
from repro.dga.wordlists import ADJECTIVES, BRAND_SUFFIXES, NOUNS, VERBS
from repro.rand import weighted_choice

_TLD_POOL = ("com", "net", "org", "info", "io", "co")
_TLD_WEIGHTS = (50, 14, 10, 4, 3, 3)

_FIRST_NAMES = (
    "alex", "maria", "john", "wei", "olga", "ivan", "sara", "juan", "li",
    "emma", "omar", "nina", "hans", "yuki", "raj", "ana",
)


def benign_label(rng: np.random.Generator) -> str:
    """One benign-looking second-level label."""
    style = int(rng.integers(0, 5))
    if style == 0:  # adjective + noun: "brightwater"
        return _pick(rng, ADJECTIVES) + _pick(rng, NOUNS)
    if style == 1:  # noun + brand suffix: "cloudify"
        return _pick(rng, NOUNS) + _pick(rng, BRAND_SUFFIXES)
    if style == 2:  # verb + noun: "buildhouse"
        return _pick(rng, VERBS) + _pick(rng, NOUNS)
    if style == 3:  # personal site: "maria-garcia" / "johnsmith"
        first = _pick(rng, _FIRST_NAMES)
        second = _pick(rng, NOUNS)
        return f"{first}-{second}" if rng.random() < 0.3 else first + second
    # short brand with optional trailing digits: "zumo24"
    noun = _pick(rng, NOUNS)[:6]
    if rng.random() < 0.25:
        return noun + str(int(rng.integers(1, 100)))
    return noun


def benign_domain(rng: np.random.Generator) -> DomainName:
    """One benign registrable domain under a realistic TLD mix."""
    tld = weighted_choice(rng, _TLD_POOL, _TLD_WEIGHTS)
    return DomainName(f"{benign_label(rng)}.{tld}")


def benign_domains(rng: np.random.Generator, count: int) -> List[DomainName]:
    """``count`` benign domains (duplicates possible, like real zones)."""
    return [benign_domain(rng) for _ in range(count)]


def _pick(rng: np.random.Generator, pool) -> str:
    return pool[int(rng.integers(0, len(pool)))]
