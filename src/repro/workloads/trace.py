"""The 8-year NXDomain trace (the Farsight-feed substitution).

Generates a domain population and its 2014-2022 NXDomain query
activity with the shapes the paper measures:

- **Figure 3** — monthly response volume rises to 2016, stays flat to
  2020, jumps sharply in 2021, and keeps climbing in 2022 (driven here
  by per-year multipliers on both domain arrivals and query rates);
- **Figure 4** — the TLD mix is dominated by .com, with .net/.cn/.ru/
  .org following and ccTLDs well represented;
- **Figure 5** — per-domain activity lifetimes are a mixture of a
  short-lived mass (most domains stop being queried within ten days)
  and a heavy tail (some keep receiving queries for years);
- **Figure 6** — expired domains carry query traffic *before* expiry,
  drop — but do not vanish — after becoming NX, and show a spike
  around day +30;
- **§5's populations** — expired domains get WHOIS histories; DGA,
  squatting, and blocklisted sub-populations are planted with the
  paper's internal proportions so the origin analyses have signal to
  find.

Scale note: the paper's expired share of all NXDomains is 0.06%; a
laptop-scale population that small would leave single-digit expired
domains to analyze, so ``expired_fraction`` is inflated (default 20%)
and every analysis reports the *within-expired* proportions, which are
preserved.  The never-registered >> expired ordering also holds.
"""

from __future__ import annotations

import dataclasses
import enum
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.blocklist.feeds import FeedGenerator
from repro.blocklist.store import BlocklistStore, RateLimit
from repro.clock import SECONDS_PER_DAY, STUDY_START, date_to_epoch
from repro.dga.corpus import benign_label
from repro.dga.families import ALL_FAMILIES
from repro.dns.name import DomainName
from repro.errors import WorkloadError
from repro.faults.plan import FaultPlan
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.pipeline import PipelineStats, ResilientIngestPipeline
from repro.rand import SeedSequenceFactory, weighted_choice
from repro.squatting.bit import bitsquat_variants
from repro.squatting.combo import combosquat_variants
from repro.squatting.detector import SquattingType
from repro.squatting.dot import dotsquat_variants
from repro.squatting.homo import homosquat_variants
from repro.squatting.targets import PopularDomains
from repro.squatting.typo import typosquat_variants
from repro.whois.history import WhoisHistoryDatabase
from repro.whois.record import WhoisRecord

STUDY_START_EPOCH = date_to_epoch(STUDY_START)

PathLike = Union[str, "os.PathLike[str]"]
STUDY_DAYS = 9 * 365  # 2014-2022 inclusive

#: Figure 3's target year-over-year volume shape (what the paper
#: reports, relative to the 2017-2020 plateau).
PAPER_YEAR_SHAPE: Dict[int, float] = {
    2014: 0.45,
    2015: 0.75,
    2016: 0.95,
    2017: 1.00,
    2018: 1.00,
    2019: 1.05,
    2020: 1.10,
    2021: 1.90,
    2022: 2.25,
}

#: Calibrated per-query-day rate factors.  Domains arrive uniformly
#: over the window, so the *observed* yearly volume is (factor ×
#: cohort residue): early years have few accumulated cohorts and the
#: residue saturates around 2017.  These factors divide the measured
#: residue curve out of PAPER_YEAR_SHAPE so the emitted trace
#: reproduces the paper's curve, not the compounded one.
YEAR_MULTIPLIERS: Dict[int, float] = {
    2014: 0.90,
    2015: 0.95,
    2016: 1.25,
    2017: 1.00,
    2018: 1.00,
    2019: 0.95,
    2020: 1.05,
    2021: 1.85,
    2022: 2.40,
}

#: Figure 4's TLD mix for the generic (non-DGA, non-squat) population.
TLD_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("com", 0.30), ("net", 0.09), ("cn", 0.15), ("ru", 0.115), ("org", 0.06),
    ("info", 0.01), ("top", 0.02), ("xyz", 0.02), ("de", 0.025), ("uk", 0.025),
    ("nl", 0.02), ("br", 0.02), ("biz", 0.02), ("cc", 0.02), ("tk", 0.02),
    ("fr", 0.015), ("eu", 0.015), ("in", 0.015), ("pl", 0.012), ("site", 0.012),
    ("online", 0.01), ("club", 0.01), ("tv", 0.01), ("me", 0.01),
)

#: Figure 7's squatting-type proportions (typo : combo : dot : bit : homo).
SQUAT_PROPORTIONS: Tuple[Tuple[SquattingType, float], ...] = (
    (SquattingType.TYPO, 45_175),
    (SquattingType.COMBO, 38_900),
    (SquattingType.DOT, 6_090),
    (SquattingType.BIT, 313),
    (SquattingType.HOMO, 126),
)


class DomainKind(enum.Enum):
    """Origin category of one trace domain (§5's taxonomy)."""

    EXPIRED_BENIGN = "expired-benign"
    EXPIRED_DGA = "expired-dga"
    EXPIRED_SQUAT = "expired-squat"
    NEVER_REGISTERED_DGA = "never-registered-dga"
    NEVER_REGISTERED_TYPO = "never-registered-typo"
    NEVER_REGISTERED_JUNK = "never-registered-junk"

    @property
    def is_expired(self) -> bool:
        return self.value.startswith("expired")


@dataclass
class TraceDomain:
    """One domain of the population with its ground truth."""

    domain: DomainName
    kind: DomainKind
    became_nx_at: int
    registered_at: Optional[int] = None
    expired_at: Optional[int] = None
    dga_family: str = ""
    squat_type: Optional[SquattingType] = None
    blocklisted: bool = False
    #: Base queries/day while active (before year scaling).
    base_rate: float = 1.0
    #: Days of NX query activity after became_nx_at.
    activity_days: int = 1


@dataclass
class TraceConfig:
    """Knobs of the trace generator."""

    total_domains: int = 20_000
    expired_fraction: float = 0.20
    dga_fraction_of_expired: float = 0.03
    squat_count: int = 450
    blocklist_fraction_of_expired: float = 0.024
    #: Within never-registered: DGA / typo / junk split.
    never_registered_dga_share: float = 0.55
    never_registered_typo_share: float = 0.20
    #: Global query-volume scale.
    rate_scale: float = 1.0
    #: Daily emission for this many days after becoming NX; weekly after.
    daily_window_days: int = 130
    #: Share of domains with heavy-tailed (multi-year) activity.
    long_lived_share: float = 0.12

    def __post_init__(self) -> None:
        if self.total_domains < 100:
            raise WorkloadError("total_domains must be at least 100")
        if not 0 < self.expired_fraction < 1:
            raise WorkloadError("expired_fraction must lie in (0, 1)")
        if self.squat_count > self.total_domains * self.expired_fraction:
            raise WorkloadError("squat_count exceeds the expired population")


@dataclass
class TraceResult:
    """Everything the §4/§5 analyses consume."""

    config: TraceConfig
    nx_db: PassiveDnsDatabase
    pre_expiry_db: PassiveDnsDatabase
    population: List[TraceDomain]
    whois: WhoisHistoryDatabase
    blocklist: BlocklistStore

    def domains_of_kind(self, *kinds: DomainKind) -> List[TraceDomain]:
        wanted = set(kinds)
        return [d for d in self.population if d.kind in wanted]

    def expired_domains(self) -> List[TraceDomain]:
        return [d for d in self.population if d.kind.is_expired]

    def ground_truth(self, domain: DomainName) -> Optional[TraceDomain]:
        key = domain.registered_domain()
        for record in self.population:
            if record.domain == key:
                return record
        return None

    def degraded(
        self,
        plan: FaultPlan,
        seed: int,
        spill_dir: Optional[PathLike] = None,
    ) -> Tuple["TraceResult", PipelineStats]:
        """Replay the NX store through a faulted resilient pipeline.

        Every stored observation is re-offered to a
        :class:`~repro.passivedns.pipeline.ResilientIngestPipeline`
        carrying ``plan.schedule(seed)``; the result is a copy of this
        trace whose ``nx_db`` holds only what survived collection under
        those faults — the input for measuring how far §4's shape
        checks degrade at a given loss level.  A null plan reproduces
        ``nx_db`` exactly (same fingerprint).  With ``spill_dir`` the
        surviving store is backed by the crash-safe on-disk segment
        store instead of staying resident.
        """
        pipeline = ResilientIngestPipeline(
            schedule=plan.schedule(seed), spill_dir=spill_dir
        )
        if pipeline.database.row_count():
            # The replay assumes an empty target: restoring a prior
            # run's committed rows and re-ingesting on top would
            # double-count every surviving observation.
            raise WorkloadError(
                f"spill directory {spill_dir} already holds a committed "
                "store; degraded replay needs a fresh directory"
            )
        pipeline.ingest_many(self.nx_db.iter_observations())
        stats = pipeline.finish()
        return dataclasses.replace(self, nx_db=pipeline.database), stats

    def spilled(self, spill_dir: PathLike) -> "TraceResult":
        """A copy of this trace whose NX store is spill-backed.

        A fresh (or empty) ``spill_dir`` receives a full batched
        replay of ``nx_db`` and one committed manifest generation; a
        directory already holding a committed store is reused as-is
        when its fingerprint matches this trace (the resume path), and
        rejected with :class:`~repro.errors.WorkloadError` otherwise —
        silently analyzing someone else's store is never an option.
        """
        db = PassiveDnsDatabase(spill_dir=spill_dir)
        if db.row_count() or db.unique_domains():
            if db.fingerprint() != self.nx_db.fingerprint():
                raise WorkloadError(
                    f"spill directory {spill_dir} holds a different store "
                    "(fingerprint mismatch with this trace)"
                )
        else:
            self.nx_db.copy_rows_into(db)
            db.spill_commit({"source": "trace-spill"})
        return dataclasses.replace(self, nx_db=db)


def _allocate_quotas(
    count: int, proportions: Tuple[Tuple[SquattingType, float], ...]
) -> Dict[SquattingType, int]:
    """Largest-remainder allocation with a floor of one per type.

    Plain rounding starves the tiny categories (bit, homo) whenever the
    big ones round up — exactly the populations Figure 7 needs present.
    """
    total_weight = sum(weight for _, weight in proportions)
    exact = {t: count * w / total_weight for t, w in proportions}
    quotas = {t: max(int(v), 1) for t, v in exact.items()}
    remainders = sorted(
        exact, key=lambda t: exact[t] - int(exact[t]), reverse=True
    )
    index = 0
    while sum(quotas.values()) < count and remainders:
        quotas[remainders[index % len(remainders)]] += 1
        index += 1
    while sum(quotas.values()) > count:
        biggest = max(quotas, key=quotas.get)
        if quotas[biggest] <= 1:
            break
        quotas[biggest] -= 1
    return quotas


class NxdomainTraceGenerator:
    """Builds the population and emits the 8-year query trace."""

    def __init__(self, seed: int = 0, config: Optional[TraceConfig] = None) -> None:
        self.config = config if config is not None else TraceConfig()
        self._seeds = SeedSequenceFactory(seed).subfactory("trace")
        self._targets = PopularDomains.default()

    # -- public API -----------------------------------------------------

    def generate(self, jobs: int = 1) -> TraceResult:
        """Build population, WHOIS, blocklist, and both databases.

        ``jobs`` shards query emission across a process pool.  Every
        per-record RNG stream is derived from the record's population
        index (not its shard), and shard results are merged back in
        population order, so the output is fingerprint-identical at
        any worker count — ``generate(jobs=4)`` is byte-for-byte
        ``generate(jobs=1)``, just faster.
        """
        if jobs < 1:
            raise WorkloadError("jobs must be at least 1")
        population = self._build_population()
        whois = self._build_whois(population)
        blocklist = self._build_blocklist(population)
        nx_db = PassiveDnsDatabase()
        pre_db = PassiveDnsDatabase()
        self._emit_queries(population, nx_db, pre_db, jobs=jobs)
        return TraceResult(
            config=self.config,
            nx_db=nx_db,
            pre_expiry_db=pre_db,
            population=population,
            whois=whois,
            blocklist=blocklist,
        )

    # -- population ------------------------------------------------------

    def _build_population(self) -> List[TraceDomain]:
        cfg = self.config
        rng = self._seeds.rng("population")
        expired_total = int(cfg.total_domains * cfg.expired_fraction)
        dga_expired = int(expired_total * cfg.dga_fraction_of_expired)
        squat_expired = cfg.squat_count
        benign_expired = expired_total - dga_expired - squat_expired
        never_total = cfg.total_domains - expired_total
        never_dga = int(never_total * cfg.never_registered_dga_share)
        never_typo = int(never_total * cfg.never_registered_typo_share)
        never_junk = never_total - never_dga - never_typo

        population: List[TraceDomain] = []
        seen: set = set()

        def push(domain, kind, **kwargs):
            if domain in seen:
                return False
            seen.add(domain)
            population.append(TraceDomain(domain=domain, kind=kind, became_nx_at=0, **kwargs))
            return True

        # Expired benign: residual-traffic domains from the corpus.
        while sum(1 for d in population if d.kind == DomainKind.EXPIRED_BENIGN) < benign_expired:
            label = benign_label(rng)
            tld = self._draw_tld(rng)
            push(DomainName(f"{label}.{tld}"), DomainKind.EXPIRED_BENIGN)

        # Expired DGA: registered-then-abandoned C&C rendezvous names.
        self._push_dga(rng, dga_expired, DomainKind.EXPIRED_DGA, push)

        # Expired squats, with Figure 7's type proportions.
        self._push_squats(rng, squat_expired, push)

        # Never-registered DGA: the bulk of bot queries.
        self._push_dga(rng, never_dga, DomainKind.NEVER_REGISTERED_DGA, push)

        # Never-registered typos of ordinary (non-brand) names.
        count = 0
        while count < never_typo:
            label = benign_label(rng)
            tld = self._draw_tld(rng)
            variants = typosquat_variants(DomainName(f"{label}.{tld}"))
            if not variants:
                continue
            pick = variants[int(rng.integers(0, len(variants)))]
            if push(pick, DomainKind.NEVER_REGISTERED_TYPO):
                count += 1

        # Never-registered junk (fat-fingered or machine noise).
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        count = 0
        while count < never_junk:
            length = int(rng.integers(5, 13))
            label = "".join(
                alphabet[int(i)] for i in rng.integers(0, 26, size=length)
            )
            if push(
                DomainName(f"{label}.{self._draw_tld(rng)}"),
                DomainKind.NEVER_REGISTERED_JUNK,
            ):
                count += 1

        self._assign_timelines(population)
        return population

    def _push_dga(self, rng, count: int, kind: DomainKind, push) -> None:
        added = 0
        guard = 0
        while added < count and guard < count * 20 + 100:
            guard += 1
            family_cls = ALL_FAMILIES[int(rng.integers(0, len(ALL_FAMILIES)))]
            family = family_cls(seed=int(rng.integers(0, 2**31)))
            day = int(rng.integers(0, STUDY_DAYS))
            samples = family.domains_for_day(day, count=4)
            for sample in samples:
                if added >= count:
                    break
                if push(sample.domain, kind, dga_family=family.name):
                    added += 1

    def _push_squats(self, rng, count: int, push) -> None:
        generators = {
            SquattingType.TYPO: typosquat_variants,
            SquattingType.COMBO: combosquat_variants,
            # Only the www-fused dot variant is registrable at the SLD
            # level *and* attributable by the census (a split-suffix
            # registration like gle.com is indistinguishable from an
            # ordinary short domain without the attacker's subdomain).
            SquattingType.DOT: lambda t: dotsquat_variants(t)[:1],
            SquattingType.BIT: bitsquat_variants,
            SquattingType.HOMO: homosquat_variants,
        }
        targets = list(self._targets)
        quotas = _allocate_quotas(count, SQUAT_PROPORTIONS)
        for squat_type, wanted in quotas.items():
            added = 0
            guard = 0
            while added < wanted and guard < wanted * 50 + 200:
                guard += 1
                target = targets[int(rng.integers(0, len(targets)))]
                variants = generators[squat_type](target)
                if not variants:
                    continue
                pick = variants[int(rng.integers(0, len(variants)))]
                if push(pick, DomainKind.EXPIRED_SQUAT, squat_type=squat_type):
                    added += 1

    def _draw_tld(self, rng) -> str:
        return weighted_choice(
            rng, [t for t, _ in TLD_WEIGHTS], [w for _, w in TLD_WEIGHTS]
        )

    # -- timelines -----------------------------------------------------------

    def _assign_timelines(self, population: List[TraceDomain]) -> None:
        """Pick became-NX day, activity lifetime, and query rate."""
        cfg = self.config
        rng = self._seeds.rng("timelines")
        for record in population:
            # Arrivals are uniform over the window; the Figure 3 year
            # shape is carried entirely by the per-query-day factor in
            # _emit_nx_activity.  (Weighting arrivals *and* rates by
            # the same curve compounds through cohort accumulation and
            # overshoots the paper's flat 2016-2020 stretch.)
            nx_day = int(rng.integers(0, 9 * 365))
            record.became_nx_at = STUDY_START_EPOCH + nx_day * SECONDS_PER_DAY
            if record.kind.is_expired:
                duration_years = int(rng.integers(1, 6))
                record.expired_at = record.became_nx_at - 45 * SECONDS_PER_DAY
                record.registered_at = (
                    record.expired_at - duration_years * 365 * SECONDS_PER_DAY
                )
            # Lifetime mixture: most domains go quiet within days; a
            # heavy tail stays queried for years (Figure 5 / §4.4).
            roll = rng.random()
            if roll < 0.55:
                lifetime = 1 + int(rng.geometric(1 / 5))
            elif roll < 1 - cfg.long_lived_share:
                lifetime = 5 + int(rng.geometric(1 / 25))
            else:
                lifetime = int(rng.pareto(0.9) * 180) + 120
            remaining = max(STUDY_DAYS - nx_day, 1)
            record.activity_days = int(min(lifetime, remaining))
            # Query rate: Zipf-ish heavy tail; DGA domains are polled
            # hard by bot fleets, expired domains by residual clients.
            base = float(rng.pareto(1.2) + 0.2)
            if record.kind in (DomainKind.EXPIRED_DGA, DomainKind.NEVER_REGISTERED_DGA):
                base *= 3.0
            if record.kind == DomainKind.EXPIRED_BENIGN and rng.random() < 0.05:
                base *= 12.0  # the high-traffic residual cohort (§3.3)
            # Cap the heavy tail: without it a single whale domain can
            # dominate a whole year's volume and drown the Figure 3
            # shape in sampling noise at laptop population sizes.
            record.base_rate = min(base, 12.0) * cfg.rate_scale

    # -- WHOIS / blocklist -------------------------------------------------------

    def _build_whois(self, population: List[TraceDomain]) -> WhoisHistoryDatabase:
        whois = WhoisHistoryDatabase()
        for record in population:
            if not record.kind.is_expired:
                continue
            assert record.registered_at is not None
            assert record.expired_at is not None
            whois.append(
                WhoisRecord(
                    domain=record.domain,
                    registrar="generic",
                    registrant_handle=f"h-{abs(hash(record.domain)) % 10_000_000}",
                    status="registered",
                    created_at=record.registered_at,
                    expires_at=record.expired_at,
                    captured_at=record.registered_at,
                    nameservers=(f"ns1.{record.domain}",),
                )
            )
            whois.append(
                WhoisRecord(
                    domain=record.domain,
                    registrar="generic",
                    registrant_handle="released",
                    status="redemption-grace-period",
                    created_at=record.registered_at,
                    expires_at=record.expired_at,
                    captured_at=record.became_nx_at,
                )
            )
        return whois

    def _build_blocklist(self, population: List[TraceDomain]) -> BlocklistStore:
        cfg = self.config
        rng = self._seeds.rng("blocklist")
        store = BlocklistStore(RateLimit(capacity=1_000_000, window_seconds=3600))
        feed = FeedGenerator(rng)
        expired = [d for d in population if d.kind.is_expired]
        for record in expired:
            listed = (
                record.kind != DomainKind.EXPIRED_BENIGN
                and rng.random() < 0.5
            ) or rng.random() < cfg.blocklist_fraction_of_expired
            if listed:
                record.blocklisted = True
                store.add(
                    record.domain,
                    feed.assign_category(record.domain),
                    listed_at=record.became_nx_at,
                )
        return store

    # -- query emission ---------------------------------------------------------

    def _emit_queries(
        self,
        population: List[TraceDomain],
        nx_db: PassiveDnsDatabase,
        pre_db: PassiveDnsDatabase,
        jobs: int = 1,
    ) -> None:
        """Emit every domain's query arrays and merge them in order.

        Serial and sharded paths run the exact same per-record code
        with the exact same per-record seeds; parallelism only changes
        *where* the arrays are computed, never what they contain.
        """
        emit_seed = self._seeds.child_seed("queries")
        if jobs == 1 or len(population) < 2 * jobs:
            emissions = _emit_shard(emit_seed, self.config, population, 0)
        else:
            bounds = [
                (len(population) * shard) // jobs for shard in range(jobs + 1)
            ]
            shards = [
                (emit_seed, self.config, population[lo:hi], lo)
                for lo, hi in zip(bounds, bounds[1:])
            ]
            emissions = []
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                # Deterministic merge: results collected in shard
                # order, regardless of completion order.
                for shard_result in pool.map(_emit_shard_args, shards):
                    emissions.extend(shard_result)
        for record, (nx_times, nx_counts, pre_times, pre_counts) in zip(
            population, emissions
        ):
            nx_db.add_rows(record.domain, nx_times, nx_counts)
            if record.kind.is_expired:
                pre_db.add_rows(record.domain, pre_times, pre_counts)


def _emit_shard_args(
    args: Tuple[int, TraceConfig, List[TraceDomain], int]
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Process-pool adapter: unpack one shard's argument tuple."""
    return _emit_shard(*args)


def _emit_shard(
    emit_seed: int,
    config: TraceConfig,
    records: Sequence[TraceDomain],
    start_index: int,
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Emit query arrays for one contiguous population shard.

    Each record draws from its own stream, derived from ``emit_seed``
    and the record's *global* population index — the property that
    makes any sharding of the population produce identical arrays.
    """
    factory = SeedSequenceFactory(emit_seed)
    out = []
    for offset, record in enumerate(records):
        rng = factory.rng(f"record-{start_index + offset}")
        nx_times, nx_counts = _emit_nx_activity(rng, record, config)
        if record.kind.is_expired:
            pre_times, pre_counts = _emit_pre_expiry(rng, record)
        else:
            pre_times = pre_counts = np.empty(0, dtype=np.int64)
        out.append((nx_times, nx_counts, pre_times, pre_counts))
    return out


def _emit_nx_activity(
    rng, record: TraceDomain, config: TraceConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """One domain's post-NX (timestamps, counts) arrays."""
    start_day = (record.became_nx_at - STUDY_START_EPOCH) // SECONDS_PER_DAY
    # Daily for the analysis window, weekly (aggregated) beyond.
    daily_days = min(record.activity_days, config.daily_window_days)
    n_daily = max(daily_days, 0)
    weekly = np.arange(
        config.daily_window_days, record.activity_days, 7, dtype=np.int64
    )
    all_offsets = np.concatenate(
        [np.arange(n_daily, dtype=np.int64), weekly]
    )
    if len(all_offsets) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    # Gentle decay of interest over the domain's NX lifetime plus
    # the Figure 6 bump around day +30.
    decay = np.exp(-all_offsets / max(record.activity_days, 30))
    # The Figure 6 spike: the paper observes a pronounced burst of
    # queries ~30 days after a domain first appears as NX, briefly
    # exceeding even its pre-expiry volume.
    bump = 1.0 + 4.0 * np.exp(-0.5 * ((all_offsets - 30) / 4.0) ** 2)
    years = 2014 + (start_day + all_offsets) // 365
    year_factors = np.asarray(
        [YEAR_MULTIPLIERS.get(int(year), 1.0) for year in years]
    )
    lam = record.base_rate * decay * bump * year_factors
    lam[n_daily:] *= 7  # weekly rows aggregate seven days
    counts = rng.poisson(lam).astype(np.int64)
    keep = counts > 0
    times = record.became_nx_at + all_offsets[keep] * SECONDS_PER_DAY
    return times, counts[keep]


def _emit_pre_expiry(
    rng, record: TraceDomain
) -> Tuple[np.ndarray, np.ndarray]:
    """NOERROR (timestamps, counts) for the 60 days before becoming NX.

    Figure 6 compares this against the post-NX series; the paper
    observes post-expiry volume is lower overall, so the pre-expiry
    rate sits above the post-NX base rate.
    """
    pre_rate = record.base_rate * 1.6
    lam = np.full(60, pre_rate)
    counts = rng.poisson(lam).astype(np.int64)
    offsets = np.arange(-60, 0, dtype=np.int64)
    times = record.became_nx_at + offsets * SECONDS_PER_DAY
    keep = (counts > 0) & (times >= STUDY_START_EPOCH)
    return times[keep], counts[keep]
