"""Calibration deployments: no-hosting baseline and control group.

§6.1's two-step filtering methodology needs two dedicated datasets:

- **no-hosting baseline** — two months of traffic to cloud instances
  hosting *no* domains: pure cloud noise, i.e. random IP scanning plus
  the platform's own monitoring (port 52646, "primarily used by Amazon
  AWS EC2 to monitor server status", which dominates Figure 10b);
- **control group** — two months of traffic to ten freshly registered,
  never-before-seen domains serving the same landing page: pure
  domain-establishment noise (certificate validation, new-domain
  crawlers).

Both generators draw scanners/validators from the *sized* IP pools of
:mod:`repro.workloads.ipspace` so the very same addresses reappear in
the main collection and the learned signatures actually fire.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.honeypot.http import HttpRequest, PacketRecord, Transport
from repro.honeypot.recorder import TrafficRecorder
from repro.workloads import useragents as ua
from repro.workloads.ipspace import make_pool

CALIBRATION_SECONDS = 60 * 86_400
AWS_MONITOR_PORT = 52646

#: Ports random scanners probe, heavy-tailed toward the usual suspects.
SCANNED_PORTS = (22, 23, 80, 443, 445, 3389, 8080, 8443, 25, 21, 5900, 6379)

#: The ten control-group domains (never registered before; checked
#: against both WHOIS databases in the paper).
CONTROL_DOMAINS = tuple(f"control-study-{i:02d}.net" for i in range(10))


def generate_no_hosting_baseline(
    rng: np.random.Generator,
    packets: int = 3_000,
    monitor_share: float = 0.55,
) -> TrafficRecorder:
    """Two months of traffic to instances with no hosted domains.

    ``monitor_share`` is the fraction on the AWS monitoring port —
    dominant, per Figure 10b.
    """
    recorder = TrafficRecorder("no-hosting")
    scanners = make_pool("scanners", rng)
    aws = make_pool("aws-monitor", rng)
    for _ in range(packets):
        timestamp = int(rng.integers(0, CALIBRATION_SECONDS))
        if rng.random() < monitor_share:
            recorder.record_packet(
                PacketRecord(
                    timestamp, aws.address(), AWS_MONITOR_PORT, Transport.TCP, 64
                )
            )
        else:
            port = SCANNED_PORTS[int(rng.integers(0, len(SCANNED_PORTS)))]
            recorder.record_packet(
                PacketRecord(
                    timestamp,
                    scanners.address(),
                    port,
                    Transport.TCP if port != 5900 else Transport.UDP,
                    int(rng.integers(40, 400)),
                )
            )
    return recorder


def generate_control_traffic(
    rng: np.random.Generator,
    requests: int = 1_500,
    domains: Optional[List[str]] = None,
    include_platform_noise: bool = True,
) -> TrafficRecorder:
    """Two months of traffic to the ten control-group domains."""
    recorder = TrafficRecorder("control-group")
    hosts = list(domains) if domains is not None else list(CONTROL_DOMAINS)
    letsencrypt = make_pool("letsencrypt", rng)
    scanners = make_pool("scanners", rng)
    aws = make_pool("aws-monitor", rng)
    for _ in range(requests):
        timestamp = int(rng.integers(0, CALIBRATION_SECONDS))
        host = hosts[int(rng.integers(0, len(hosts)))]
        roll = rng.random()
        if roll < 0.45:
            # Certificate validation probing /.well-known.
            recorder.record_request(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=letsencrypt.address(),
                    host=host,
                    path="/.well-known/acme-challenge/token",
                    user_agent=ua.LETSENCRYPT_UA,
                    port=80,
                )
            )
        elif roll < 0.8:
            # New-domain crawlers notice the fresh registration.
            recorder.record_request(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=scanners.address(),
                    host=host,
                    path="/" if rng.random() < 0.7 else "/robots.txt",
                    user_agent="Mozilla/5.0 (compatible; NewDomainSpider/1.0 crawler)",
                    port=80,
                )
            )
        else:
            recorder.record_request(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=scanners.address(),
                    host=host,
                    path="/",
                    user_agent="",
                    port=443,
                )
            )
    if include_platform_noise:
        # The hosting platform's monitor runs here too (Figure 10b).
        for _ in range(requests):
            recorder.record_packet(
                PacketRecord(
                    int(rng.integers(0, CALIBRATION_SECONDS)),
                    aws.address(),
                    AWS_MONITOR_PORT,
                    Transport.TCP,
                    64,
                )
            )
    return recorder


def generate_platform_packets(
    rng: np.random.Generator,
    count: int,
    duration: int = CALIBRATION_SECONDS * 3,
) -> List[PacketRecord]:
    """Platform-monitor and scanner packets during the main collection.

    The same infrastructure that pollutes the calibration deployments
    keeps hitting the honeypot instances; these packets are what the
    learned filter removes, which is why port 52646 dominates Figure
    10b yet is absent from Figure 10a.
    """
    scanners = make_pool("scanners", rng)
    aws = make_pool("aws-monitor", rng)
    packets = []
    for _ in range(count):
        timestamp = int(rng.integers(0, duration))
        if rng.random() < 0.7:
            packets.append(
                PacketRecord(
                    timestamp, aws.address(), AWS_MONITOR_PORT, Transport.TCP, 64
                )
            )
        else:
            port = SCANNED_PORTS[int(rng.integers(0, len(SCANNED_PORTS)))]
            packets.append(
                PacketRecord(
                    timestamp,
                    scanners.address(),
                    port,
                    Transport.TCP,
                    int(rng.integers(40, 400)),
                )
            )
    return packets
