"""User-Agent string pools for workload actors.

These strings are built to round-trip through
:func:`repro.honeypot.useragent.parse_user_agent` into the intended
class — the generator and categorizer must agree on the header
dialect, exactly as real crawlers and browsers publish theirs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.rand import weighted_choice

SEARCH_CRAWLERS_GLOBAL: Tuple[Tuple[str, float], ...] = (
    ("Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)", 45),
    ("Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)", 25),
    ("Mozilla/5.0 (compatible; DuckDuckBot/1.0; +http://duckduckgo.com/duckduckbot.html)", 5),
    ("Mozilla/5.0 (compatible; YandexBot/3.0; +http://yandex.com/bots)", 10),
    ("Mozilla/5.0 (compatible; Baiduspider/2.0; +http://www.baidu.com/search/spider.html)", 5),
    ("Mozilla/5.0 (compatible; Applebot/0.1; +http://www.apple.com/go/applebot)", 5),
    ("Mozilla/5.0 (compatible; SemrushBot/7~bl; +http://www.semrush.com/bot.html)", 5),
)

#: Regional mix for previously-Russian-hosted domains: mail.ru and
#: Yandex dominate (the porno-komiksy.com observation in §6.3).
SEARCH_CRAWLERS_RU: Tuple[Tuple[str, float], ...] = (
    ("Mozilla/5.0 (compatible; Mail.RU_Bot/2.0; +http://go.mail.ru/help/robots)", 45),
    ("Mozilla/5.0 (compatible; YandexBot/3.0; +http://yandex.com/bots)", 30),
    ("Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)", 15),
    ("Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)", 10),
)

FILE_GRABBERS: Tuple[Tuple[str, float], ...] = (
    ("Mozilla/5.0 (compatible; Googlebot-Image/1.0 crawler)", 35),
    ("Mozilla/5.0 (compatible; YandexImages/3.0 crawler; +http://yandex.com/bots)", 20),
    ("Mozilla/5.0 (compatible; MJ12bot/v1.4.8; http://mj12bot.com/)", 15),
    ("Mozilla/5.0 (compatible; AhrefsBot/7.0; +http://ahrefs.com/robot/)", 15),
    ("Mozilla/5.0 (compatible; PetalBot;+https://webmaster.petalsearch.com/site/petalbot)", 15),
)

#: Email-provider image crawlers: Gmail 58%, Yahoo 25%, Outlook 10%
#: (conf-cdn.com's 30,884 / 13,528 / 5,483 split), rest generic.
EMAIL_CRAWLERS: Tuple[Tuple[str, float], ...] = (
    ("Mozilla/5.0 (Windows NT 5.1; rv:11.0) Gecko Firefox/11.0 (via ggpht.com GoogleImageProxy)", 58),
    ("YahooMailProxy; https://help.yahoo.com/kb/yahoo-mail-proxy-SLN28749.html", 25),
    ("OutlookImageProxy (Microsoft Office Outlook)", 10),
    ("Mozilla/5.0 (compatible; mail crawler)", 7),
)

SCRIPT_TOOLS: Tuple[Tuple[str, float], ...] = (
    ("python-requests/2.28.1", 30),
    ("curl/7.85.0", 20),
    ("Wget/1.21.3 (linux-gnu)", 15),
    ("Java/1.8.0_271", 12),
    ("Go-http-client/1.1", 10),
    ("okhttp/4.9.3", 8),
    ("python-urllib/3.9", 5),
)

#: The 1x-sport-bk7.com polling fleet's single fixed UA (§6.3 quotes
#: it verbatim).
POLLING_FLEET_UA = (
    "Mozilla/5.0 (Windows NT 6.3; WOW64) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/41.0.2272.118 Safari/537.36"
)

PC_MOBILE_BROWSERS: Tuple[Tuple[str, float], ...] = (
    ("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/103.0.0.0 Safari/537.36", 30),
    ("Mozilla/5.0 (Macintosh; Intel Mac OS X 12_4) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/15.5 Safari/605.1.15", 12),
    ("Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:102.0) Gecko/20100101 Firefox/102.0", 10),
    ("Mozilla/5.0 (iPhone; CPU iPhone OS 15_5 like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/15.5 Mobile/15E148 Safari/604.1", 15),
    ("Mozilla/5.0 (Linux; Android 12; HUAWEI P50) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/101.0 Mobile Safari/537.36", 10),
    ("Mozilla/5.0 (Linux; Android 11; XiaoMi Mi 11) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/100.0 Mobile Safari/537.36", 10),
    ("Mozilla/5.0 (Linux; Android 12; Samsung SM-G991B) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/102.0 Mobile Safari/537.36", 13),
)

#: Figure 13's in-app browser mix (counts reconstructed from the pie:
#: WhatsApp 1,008; Facebook 624; WeChat 576; Twitter 444; Instagram
#: 408; Others 328; DingTalk 252; QQ 168 — of 3,808 total).
INAPP_BROWSERS: Tuple[Tuple[str, float], ...] = (
    ("Mozilla/5.0 (iPhone; CPU iPhone OS 15_0 like Mac OS X) WhatsApp/2.21.1", 1008),
    ("Mozilla/5.0 (Linux; Android 11) [FB_IAB/FB4A;FBAV/350.0;]", 624),
    ("Mozilla/5.0 (Linux; Android 10) MicroMessenger/8.0.16", 576),
    ("Mozilla/5.0 (Linux; Android 11) TwitterAndroid/9.0", 444),
    ("Mozilla/5.0 (Linux; Android 11) Instagram 200.0.0", 408),
    ("Mozilla/5.0 (Linux; Android 9) DingTalk/6.0.12", 252),
    ("Mozilla/5.0 (Linux; Android 10) QQ/8.8.0", 168),
    ("Mozilla/5.0 (Linux; Android 10) Line/11.0", 164),
    ("Mozilla/5.0 (iPhone) Snapchat/11.0", 164),
)

LETSENCRYPT_UA = (
    "Mozilla/5.0 (compatible; Let's Encrypt validation server crawler; "
    "+https://www.letsencrypt.org/)"
)


def pick(rng: np.random.Generator, pool: Tuple[Tuple[str, float], ...]) -> str:
    """Draw one UA string from a weighted pool."""
    return weighted_choice(rng, [ua for ua, _ in pool], [w for _, w in pool])
