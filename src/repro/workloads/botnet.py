"""The gpclick.com botnet (Figures 12, 14, 15).

gpclick.com — an NXDomain for years, previously a mobile-malware C&C
first reported in 2013 — received 939,420 requests during the study,
98.1% of its traffic: infected Android handsets polling
``/getTask.php`` with their IMEI, phone number, country code, and model
in the query string (Figure 12), all with the User-Agent
``Apache-HttpClient/UNAVAILABLE (java 1.4)``, routed through cloud
proxy infrastructure dominated by google-proxy hosts (56.1%,
Figure 15), with victims spread across ~40 phone models (Nexus 5X
55.9%, Nexus 5 42.3%) and country codes on four continents (Figure 14).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.honeypot.http import HttpRequest
from repro.honeypot.reverse_ip import ReverseIpTable
from repro.workloads.ipspace import make_pool
from repro.errors import ConfigError

BOTNET_USER_AGENT = "Apache-HttpClient/UNAVAILABLE (java 1.4)"
TASK_PATH = "/getTask.php"

#: (country name, calling code, continent, weight) — Figure 14's
#: distribution: a handful of countries dominate, with a long tail
#: across Europe, Asia, the Americas, and Oceania.
COUNTRY_CODES: Tuple[Tuple[str, str, str, float], ...] = (
    ("ru", "+7", "Europe", 34.0),
    ("us", "+1", "America", 14.0),
    ("uy", "+598", "America", 9.0),
    ("nl", "+31", "Europe", 8.0),
    ("cn", "+86", "Asia", 7.0),
    ("ua", "+380", "Europe", 6.0),
    ("de", "+49", "Europe", 5.0),
    ("kz", "+7", "Asia", 4.0),
    ("br", "+55", "America", 3.0),
    ("in", "+91", "Asia", 2.5),
    ("id", "+62", "Asia", 2.0),
    ("pl", "+48", "Europe", 1.5),
    ("fr", "+33", "Europe", 1.2),
    ("au", "+61", "Oceania", 1.0),
    ("mx", "+52", "America", 0.8),
    ("nz", "+64", "Oceania", 0.3),
)

#: Phone models: Nexus 5X 55.9%, Nexus 5 42.3%, 1.8% across the rest.
PHONE_MODELS: Tuple[Tuple[str, float], ...] = (
    ("Nexus 5X", 55.9),
    ("Nexus 5", 42.3),
    ("Samsung Galaxy S5", 0.3),
    ("LG G3", 0.25),
    ("Vivo Y51", 0.2),
    ("HTC One M8", 0.2),
    ("HUAWEI P8", 0.2),
    ("XiaoMi Mi4", 0.2),
    ("Motorola Moto G", 0.15),
    ("Samsung Galaxy Note 4", 0.1),
    ("LG G4", 0.1),
    ("HUAWEI Mate 7", 0.1),
)

#: Proxy infrastructure: google-proxy dominates (56.1%, Figure 15).
PROXY_POOLS: Tuple[Tuple[str, float], ...] = (
    ("google-proxy", 56.1),
    ("aws-cloud", 18.0),
    ("hetzner-cloud", 12.0),
    ("digitalocean-cloud", 8.0),
    ("ovh-cloud", 5.9),
)


class GpclickBotnet:
    """Generates the getTask.php polling traffic of gpclick.com."""

    def __init__(
        self,
        rng: np.random.Generator,
        reverse_ip: Optional[ReverseIpTable] = None,
        host: str = "gpclick.com",
    ) -> None:
        self.rng = rng
        self.host = host
        self._pools = {
            name: make_pool(name, rng, reverse_ip) for name, _ in PROXY_POOLS
        }

    # -- victim synthesis -------------------------------------------------

    def _imei(self) -> str:
        """An anonymized IMEI in the paper's redacted A-BBBBBB-CCCCCC-D shape."""
        tac = int(self.rng.integers(100_000, 999_999))
        serial = int(self.rng.integers(100_000, 999_999))
        check = int(self.rng.integers(0, 10))
        return f"{int(self.rng.integers(1, 10))}-{tac}-{serial}-{check}"

    def _victim(self) -> Tuple[str, str, str, str]:
        """(country, phone, model, continent) for one infected handset."""
        countries = list(COUNTRY_CODES)
        weights = [w for *_, w in countries]
        index = int(
            self.rng.choice(len(countries), p=np.asarray(weights) / sum(weights))
        )
        country, calling_code, continent, _ = countries[index]
        subscriber = int(self.rng.integers(1_000_000_000, 9_999_999_999))
        phone = f"{calling_code}{subscriber}"
        model_names = [m for m, _ in PHONE_MODELS]
        model_weights = np.asarray([w for _, w in PHONE_MODELS])
        model = model_names[
            int(self.rng.choice(len(model_names), p=model_weights / model_weights.sum()))
        ]
        return country, phone, model, continent

    def _source_ip(self) -> str:
        names = [n for n, _ in PROXY_POOLS]
        weights = np.asarray([w for _, w in PROXY_POOLS])
        pool = names[int(self.rng.choice(len(names), p=weights / weights.sum()))]
        return self._pools[pool].address()

    # -- request generation ----------------------------------------------------

    def request_at(self, timestamp: int) -> HttpRequest:
        """One bot poll (Figure 12's URL structure)."""
        country, phone, model, _ = self._victim()
        mnc = int(self.rng.integers(1, 999))
        mcc = int(self.rng.integers(200, 750))
        query = (
            f"imei={self._imei()}&balance=0&country={country}"
            f"&phone={phone}&op=Android&mnc={mnc}&mcc={mcc}"
            f"&model={model.replace(' ', '%20')}&os=23"
        )
        return HttpRequest(
            timestamp=timestamp,
            src_ip=self._source_ip(),
            host=self.host,
            path=TASK_PATH,
            query=query,
            user_agent=BOTNET_USER_AGENT,
            port=80,
        )

    def requests(self, count: int, start: int, end: int) -> List[HttpRequest]:
        """``count`` polls spread uniformly over [start, end)."""
        if count < 0:
            raise ConfigError("count must be non-negative")
        if end <= start:
            raise ConfigError("end must follow start")
        timestamps = np.sort(self.rng.integers(start, end, size=count))
        return [self.request_at(int(t)) for t in timestamps]


def continent_of_country(country: str) -> Optional[str]:
    """Continent attribution for Figure 14's grouping."""
    for name, _, continent, _ in COUNTRY_CODES:
        if name == country:
            return continent
    return None
