"""Calibrated synthetic workloads.

The generators in this package are the substitution for the paper's
two proprietary data sources:

- :mod:`repro.workloads.trace` replaces the Farsight feed — an 8-year
  NXDomain query trace over a generated domain population whose
  volume curve, TLD mix, lifespan decay, expiry dynamics, and
  malicious sub-populations follow the shapes of §4/§5;
- :mod:`repro.workloads.domains` + the actor modules replace the six
  months of real honeypot traffic — per-domain request generators for
  the 19 registered domains, calibrated to Table 1's per-category
  counts, emitting requests that the Figure 11 categorizer classifies
  back into those categories from headers alone;
- :mod:`repro.workloads.scanners` and :mod:`repro.workloads.control`
  generate the two calibration datasets (no-hosting baseline and
  control group) that train the Figure 9 noise filter.
"""

from repro.workloads.botnet import GpclickBotnet
from repro.workloads.control import generate_control_traffic, generate_no_hosting_baseline
from repro.workloads.domains import (
    PAPER_TABLE1,
    RegisteredDomainProfile,
    registered_domain_profiles,
)
from repro.workloads.honeytraffic import HoneypotTrafficGenerator
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig, TraceResult

__all__ = [
    "GpclickBotnet",
    "HoneypotTrafficGenerator",
    "NxdomainTraceGenerator",
    "PAPER_TABLE1",
    "RegisteredDomainProfile",
    "TraceConfig",
    "TraceResult",
    "generate_control_traffic",
    "generate_no_hosting_baseline",
    "registered_domain_profiles",
]
