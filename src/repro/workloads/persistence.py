"""Persistence for whole trace results.

A :class:`~repro.workloads.trace.TraceResult` saved to a directory can
be reloaded in another session without regeneration — the dataset-
artifact workflow: generate once with a documented seed, analyze many
times.

Layout::

    <dir>/
      manifest.json        config, counts, format version
      nx.npz               the NXDomain columnar store
      pre_expiry.npz       the pre-expiry (NOERROR) store
      whois.jsonl          WHOIS history snapshots
      blocklist.jsonl      blocklist entries
      population.jsonl     per-domain ground truth
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.blocklist.categories import ThreatCategory
from repro.blocklist.store import BlocklistEntry, BlocklistStore, RateLimit
from repro.dns.name import DomainName
from repro.faults.plan import FaultPlan
from repro.passivedns.io import load_database, save_database
from repro.passivedns.spill import atomic_write_bytes
from repro.passivedns.pipeline import PipelineStats, ResilientIngestPipeline
from repro.squatting.detector import SquattingType
from repro.whois.io import load_history, save_history
from repro.errors import ConfigError
from repro.workloads.trace import (
    DomainKind,
    TraceConfig,
    TraceDomain,
    TraceResult,
)

FORMAT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


def save_trace(trace: TraceResult, directory: PathLike) -> Path:
    """Write the full trace result under ``directory`` (created)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    save_database(trace.nx_db, root / "nx.npz")
    save_database(trace.pre_expiry_db, root / "pre_expiry.npz")
    save_history(trace.whois, root / "whois.jsonl")
    _save_blocklist(trace.blocklist, root / "blocklist.jsonl")
    _save_population(trace, root / "population.jsonl")
    manifest = {
        "version": FORMAT_VERSION,
        "config": dataclasses.asdict(trace.config),
        "domains": len(trace.population),
        "nx_responses": trace.nx_db.total_responses(),
    }
    # The manifest commits the archive: readers treat its presence as
    # "this directory is complete", so it must land atomically, last.
    atomic_write_bytes(
        root / "manifest.json",
        (json.dumps(manifest, indent=2) + "\n").encode("utf-8"),
    )
    return root


def load_trace(directory: PathLike) -> TraceResult:
    """Read a trace saved by :func:`save_trace`."""
    root = Path(directory)
    manifest = json.loads((root / "manifest.json").read_text())
    if manifest.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"unsupported trace archive version {manifest.get('version')}"
        )
    config = TraceConfig(**manifest["config"])
    trace = TraceResult(
        config=config,
        nx_db=load_database(root / "nx.npz"),
        pre_expiry_db=load_database(root / "pre_expiry.npz"),
        population=_load_population(root / "population.jsonl"),
        whois=load_history(root / "whois.jsonl"),
        blocklist=_load_blocklist(root / "blocklist.jsonl"),
    )
    if len(trace.population) != manifest["domains"]:
        raise ConfigError("corrupt trace archive: population count mismatch")
    return trace


def replay_with_checkpoints(
    trace: TraceResult,
    plan: FaultPlan,
    seed: int,
    directory: PathLike,
    every: int = 5_000,
    stop_after: Optional[int] = None,
    spill: bool = False,
    spill_compact_threshold: int = 16,
) -> Tuple[Optional[TraceResult], PipelineStats]:
    """Faulted replay of ``trace.nx_db`` with durable progress.

    The pipeline checkpoints to ``directory`` every ``every`` offered
    observations, and — crucially — *resumes* from whatever checkpoint
    is already there, fast-forwarding the fault schedule's RNG streams
    so the continued run makes exactly the decisions the interrupted
    one would have.  ``stop_after`` aborts after that many additional
    observations (checkpointing first) to simulate an interruption;
    the return is then ``(None, stats)``.  A completed replay returns
    the degraded :class:`TraceResult` and final pipeline stats.

    With ``spill=True`` the store is spill-backed in ``directory``
    itself: each checkpoint is a crash-safe manifest-generation commit,
    and once ``spill_compact_threshold`` segments accumulate the
    commit compacts them into one superseding generation.
    """
    pipeline = ResilientIngestPipeline(
        schedule=plan.schedule(seed),
        checkpoint_dir=None if spill else directory,
        checkpoint_every=every,
        spill_dir=directory if spill else None,
        spill_compact_threshold=spill_compact_threshold,
    )
    cursor = pipeline.resume()
    for index, observation in enumerate(trace.nx_db.iter_observations()):
        if index < cursor:
            continue
        pipeline.ingest(observation)
        if (
            stop_after is not None
            and pipeline.stats.offered - cursor >= stop_after
        ):
            pipeline.checkpoint()
            return None, pipeline.stats
    stats = pipeline.finish()
    return dataclasses.replace(trace, nx_db=pipeline.database), stats


# ---------------------------------------------------------------------------
# blocklist / population JSONL
# ---------------------------------------------------------------------------


def _save_blocklist(store: BlocklistStore, path: Path) -> None:
    lines = []
    for domain in sorted(store._entries):  # noqa: SLF001 - serializer
        entry = store._entries[domain]
        lines.append(
            json.dumps(
                {
                    "domain": str(entry.domain),
                    "category": entry.category.value,
                    "listed_at": entry.listed_at,
                    "source": entry.source,
                },
                sort_keys=True,
            )
        )
    payload = "".join(line + "\n" for line in lines)
    atomic_write_bytes(path, payload.encode("utf-8"))


def _load_blocklist(path: Path) -> BlocklistStore:
    store = BlocklistStore(RateLimit(capacity=1_000_000, window_seconds=3600))
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            store.add_all(
                [
                    BlocklistEntry(
                        DomainName(payload["domain"]),
                        ThreatCategory(payload["category"]),
                        int(payload["listed_at"]),
                        payload.get("source", "archive"),
                    )
                ]
            )
    return store


def _save_population(trace: TraceResult, path: Path) -> None:
    lines = []
    for record in trace.population:
        lines.append(
            json.dumps(
                {
                    "domain": str(record.domain),
                    "kind": record.kind.value,
                    "became_nx_at": record.became_nx_at,
                    "registered_at": record.registered_at,
                    "expired_at": record.expired_at,
                    "dga_family": record.dga_family,
                    "squat_type": (
                        record.squat_type.value if record.squat_type else None
                    ),
                    "blocklisted": record.blocklisted,
                    "base_rate": record.base_rate,
                    "activity_days": record.activity_days,
                },
                sort_keys=True,
            )
        )
    payload = "".join(line + "\n" for line in lines)
    atomic_write_bytes(path, payload.encode("utf-8"))


def _load_population(path: Path) -> list:
    population = []
    squat_by_value = {t.value: t for t in SquattingType}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            population.append(
                TraceDomain(
                    domain=DomainName(payload["domain"]),
                    kind=DomainKind(payload["kind"]),
                    became_nx_at=int(payload["became_nx_at"]),
                    registered_at=payload.get("registered_at"),
                    expired_at=payload.get("expired_at"),
                    dga_family=payload.get("dga_family", ""),
                    squat_type=squat_by_value.get(payload.get("squat_type")),
                    blocklisted=bool(payload.get("blocklisted")),
                    base_rate=float(payload.get("base_rate", 1.0)),
                    activity_days=int(payload.get("activity_days", 1)),
                )
            )
    return population
