"""The 19 registered NXDomains and their Table 1 traffic profiles.

This module transcribes Table 1 of the paper — HTTP/HTTPS requests per
category received by each registered domain over the 6-month
collection — and wraps it as generator calibration: the honeypot
traffic generator scales these counts and emits requests whose
header-level classification reproduces them.

Domain name fidelity note: the paper prints ``twitter-supOrt.com``
(capital O) in the table; the running text and the squatting analysis
make clear it is the digit-zero combosquat ``twitter-sup0rt.com``,
which is what we use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.honeypot.categorize import Subcategory
from repro.errors import ConfigError

#: Column order of Table 1.
TABLE1_FIELDS: Tuple[Subcategory, ...] = (
    Subcategory.SEARCH_ENGINE,
    Subcategory.FILE_GRABBER,
    Subcategory.SCRIPT_SOFTWARE,
    Subcategory.MALICIOUS_REQUEST,
    Subcategory.REFERRAL_SEARCH,
    Subcategory.REFERRAL_EMBEDDED,
    Subcategory.REFERRAL_MALICIOUS,
    Subcategory.PC_MOBILE,
    Subcategory.INAPP,
    Subcategory.OTHER,
)

#: Table 1 verbatim: domain → (counts per TABLE1_FIELDS, malicious?).
#: The paper highlights 8 of the 19 domains as malicious.
PAPER_TABLE1: Dict[str, Tuple[Tuple[int, ...], bool]] = {
    "resheba.online": ((15_223, 105_221, 1_866_523, 52_263, 1_052, 655, 265, 56, 20, 55_874), False),
    "1x-sport-bk7.com": ((4_058, 328, 1_215_606, 725, 3_054, 143, 522, 2_952, 43, 15_428), False),
    "fanserials.moda": ((2_536, 5_622, 996_968, 6_225, 1_556, 4_112, 2_189, 106, 122, 4_071), False),
    "gpclick.com": ((415, 144, 365, 939_420, 10_524, 248, 115, 1_014, 22, 5_014), True),
    "porno-komiksy.com": ((43_285, 105_412, 2_952, 7_441, 2_482, 10_244, 3_052, 25_112, 1_825, 4_552), False),
    "conf-cdn.com": ((2_653, 55_842, 10_228, 1_699, 3_455, 2_568, 623, 2_004, 652, 11_957), True),
    "pro100diplom.com": ((796, 48_868, 16_500, 9_734, 83, 261, 53, 351, 108, 1_026), False),
    "yebeda.org": ((5_509, 25_742, 26_564, 2_094, 1_993, 351, 314, 205, 30, 4_625), False),
    "oboru.work": ((1_052, 49_954, 2_651, 6_048, 50, 366, 30, 4_852, 66, 501), False),
    "kinopack.org": ((1_205, 5_624, 6_401, 3_255, 1_054, 213, 201, 83, 304, 522), False),
    "sfscl.info": ((421, 10_566, 2_946, 1_098, 152, 62, 97, 401, 65, 957), True),
    "ipservl.net": ((2_016, 7_815, 3_297, 1_552, 336, 105, 78, 105, 63, 1_192), True),
    "cservll.net": ((1_487, 263, 92, 65, 2_055, 263, 102, 198, 105, 6_234), True),
    "ipserv2.net": ((323, 52, 144, 1_486, 203, 96, 58, 98, 86, 6_811), True),
    "redirectmyquery.com": ((266, 128, 62, 1_547, 269, 75, 63, 188, 42, 5_022), False),
    "adrenali.gq": ((1_089, 357, 215, 98, 52, 144, 82, 1_096, 65, 3_054), False),
    "dns2.name": ((396, 88, 105, 93, 835, 35, 56, 48, 51, 3_987), False),
    "akamai-technology.com": ((86, 85, 85, 196, 65, 88, 352, 620, 73, 672), True),
    "twitter-sup0rt.com": ((126, 185, 58, 57, 107, 63, 65, 118, 66, 589), True),
}

#: The paper's totals, used by shape assertions.
PAPER_TOTAL_REQUESTS = 5_925_311
PAPER_CRAWLER_TOTAL = 505_238        # 82,942 search + 422,296 grabber
PAPER_AUTOMATED_TOTAL = 5_186_858    # 4,151,762 script + 1,035,096 malicious


@dataclass(frozen=True)
class RegisteredDomainProfile:
    """Calibration for one registered domain's traffic generator."""

    domain: str
    malicious: bool
    counts: Dict[Subcategory, int]
    #: Regional flavour of the domain's search/crawl ecosystem
    #: ("ru" domains attract mail.ru, "us" Google/Bing — §6.3).
    region: str = "us"
    #: Whether the file-grabber traffic is dominated by email-provider
    #: image crawlers (the conf-cdn.com pattern: 95.1%).
    email_crawler_heavy: bool = False
    #: Whether the script traffic is a fixed-UA status.json polling
    #: fleet (the 1x-sport-bk7.com pattern).
    polling_fleet: bool = False
    #: Whether malicious requests are the gpclick botnet (getTask.php).
    botnet_target: bool = False

    def total(self) -> int:
        return sum(self.counts.values())

    def scaled_counts(self, scale: float) -> Dict[Subcategory, int]:
        """Counts multiplied by ``scale``, rounded, floor 1 for nonzero."""
        if scale <= 0:
            raise ConfigError("scale must be positive")
        scaled = {}
        for subcategory, count in self.counts.items():
            value = int(round(count * scale))
            if count > 0 and value == 0:
                value = 1
            scaled[subcategory] = value
        return scaled


_REGIONS = {
    "resheba.online": "ru",
    "1x-sport-bk7.com": "ru",
    "fanserials.moda": "ru",
    "porno-komiksy.com": "ru",
    "pro100diplom.com": "ru",
    "yebeda.org": "ru",
    "oboru.work": "ru",
    "kinopack.org": "ru",
}


def registered_domain_profiles() -> List[RegisteredDomainProfile]:
    """All 19 domain profiles, in Table 1 (traffic-volume) order."""
    profiles = []
    for domain, (row, malicious) in PAPER_TABLE1.items():
        counts = dict(zip(TABLE1_FIELDS, row))
        profiles.append(
            RegisteredDomainProfile(
                domain=domain,
                malicious=malicious,
                counts=counts,
                region=_REGIONS.get(domain, "us"),
                email_crawler_heavy=(domain == "conf-cdn.com"),
                polling_fleet=(domain == "1x-sport-bk7.com"),
                botnet_target=(domain == "gpclick.com"),
            )
        )
    return profiles


def paper_row_total(domain: str) -> int:
    """Sum of the row's category cells (the table's Total column is
    reproduced from the cells; minor typesetting discrepancies in the
    original are resolved in favour of the cells)."""
    row, _ = PAPER_TABLE1[domain]
    return sum(row)
