"""Per-domain honeypot traffic generation calibrated to Table 1.

For each of the 19 registered domains, the generator emits — per
Table 1 subcategory, scaled by ``scale`` — requests whose *headers*
carry the signals that the Figure 11 categorizer keys on.  The
end-to-end claim of the reproduction is exactly this loop: generate
raw traffic from actor models, push it through recording, filtering,
and categorization, and recover Table 1's shape.

Also emitted (``include_noise=True``) is the contamination the filter
exists to remove: cloud-scanner probes from the same address space as
the no-hosting baseline and certificate-validation traffic matching the
control group's signatures.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.honeypot.categorize import Subcategory
from repro.honeypot.http import HttpRequest
from repro.honeypot.reverse_ip import ReverseIpTable
from repro.honeypot.webfilter import WebFilter, WebPage
from repro.workloads import useragents as ua
from repro.workloads.botnet import GpclickBotnet
from repro.workloads.domains import (
    RegisteredDomainProfile,
    registered_domain_profiles,
)
from repro.workloads.ipspace import make_pool
from repro.errors import ConfigError

#: Six months of collection, in seconds (timestamps are study-relative).
COLLECTION_SECONDS = 180 * 86_400

_PAGE_PATHS = (
    "/", "/index.html", "/news.html", "/catalog.php", "/video.php",
    "/article-2021.html", "/course/math.html", "/serial/ep1.html",
)
_ASSET_PATHS = (
    "/img/banner.jpeg", "/img/logo.png", "/sitemap.xml", "/feed.xml",
    "/img/photo1.jpeg", "/img/photo2.png", "/video/preview.jpeg",
    "/static/style.css.map", "/files/catalog.pdf",
)
_EMAIL_ASSET_PATHS = (
    "/newsletter/pixel.png", "/mail/banner.jpeg", "/promo/image1.png",
    "/campaign/header.jpeg",
)
_SCRIPT_PATHS = (
    "/status.json", "/api/feed.json", "/video/lesson1.mp4.torrent",
    "/files/course-algebra.mp4", "/data/export.xml", "/update/manifest.json",
)
_PROBE_PATHS = (
    "/wp-login.php", "/xmlrpc.php", "/changepassword.php", "/admin.php",
    "/phpmyadmin/index.php", "/.env", "/cgi-bin/test.sh", "/config.php",
)
_SEARCH_REFERERS_GLOBAL = (
    "https://www.google.com/search?q={d}",
    "https://www.bing.com/search?q={d}",
)
_SEARCH_REFERERS_RU = (
    "https://go.mail.ru/search?q={d}",
    "https://yandex.ru/search/?text={d}",
    "https://www.google.com/search?q={d}",
)


class HoneypotTrafficGenerator:
    """Generates the full 6-month request stream for the 19 domains."""

    def __init__(
        self,
        rng: np.random.Generator,
        scale: float = 0.01,
        reverse_ip: Optional[ReverseIpTable] = None,
        web_filter: Optional[WebFilter] = None,
        profiles: Optional[List[RegisteredDomainProfile]] = None,
    ) -> None:
        if scale <= 0:
            raise ConfigError("scale must be positive")
        self.rng = rng
        self.scale = scale
        self.reverse_ip = reverse_ip if reverse_ip is not None else ReverseIpTable()
        self.web_filter = web_filter if web_filter is not None else WebFilter()
        self.profiles = (
            profiles if profiles is not None else registered_domain_profiles()
        )
        self._pools = {
            name: make_pool(name, rng, self.reverse_ip)
            for name in (
                "google-crawler", "bing-crawler", "yandex-crawler",
                "mailru-crawler", "baidu-crawler", "gmail-proxy",
                "yahoo-proxy", "outlook-proxy", "scripts", "users",
                "others", "scanners", "letsencrypt", "residential",
            )
        }
        self._botnet = GpclickBotnet(rng, self.reverse_ip)
        self._emitters = {
            Subcategory.SEARCH_ENGINE: self._emit_search_engine,
            Subcategory.FILE_GRABBER: self._emit_file_grabber,
            Subcategory.SCRIPT_SOFTWARE: self._emit_script_software,
            Subcategory.MALICIOUS_REQUEST: self._emit_malicious_request,
            Subcategory.REFERRAL_SEARCH: self._emit_referral_search,
            Subcategory.REFERRAL_EMBEDDED: self._emit_referral_embedded,
            Subcategory.REFERRAL_MALICIOUS: self._emit_referral_malicious,
            Subcategory.PC_MOBILE: self._emit_pc_mobile,
            Subcategory.INAPP: self._emit_inapp,
            Subcategory.OTHER: self._emit_other,
        }

    # -- top-level -----------------------------------------------------------

    def generate(self, include_noise: bool = True) -> List[HttpRequest]:
        """All requests of the collection period, time-ordered."""
        requests: List[HttpRequest] = []
        for profile in self.profiles:
            requests.extend(self.generate_for(profile))
        if include_noise:
            requests.extend(self._emit_contamination())
        requests.sort(key=lambda r: r.timestamp)
        return requests

    def generate_for(self, profile: RegisteredDomainProfile) -> List[HttpRequest]:
        """The 6-month stream for one domain, per its Table 1 row."""
        requests: List[HttpRequest] = []
        for subcategory, count in profile.scaled_counts(self.scale).items():
            if count <= 0:
                continue
            requests.extend(self._emitters[subcategory](profile, count))
        return requests

    # -- shared helpers ------------------------------------------------------

    def _times(self, count: int) -> List[int]:
        return [int(t) for t in self.rng.integers(0, COLLECTION_SECONDS, size=count)]

    def _port(self) -> int:
        return 443 if self.rng.random() < 0.55 else 80

    def _pick_path(self, paths) -> str:
        return paths[int(self.rng.integers(0, len(paths)))]

    def _crawler_identity(self, profile: RegisteredDomainProfile):
        """(user_agent, source_ip) for a search-engine crawler visit."""
        pool = (
            ua.SEARCH_CRAWLERS_RU if profile.region == "ru" else ua.SEARCH_CRAWLERS_GLOBAL
        )
        agent = ua.pick(self.rng, pool)
        lowered = agent.lower()
        if "mail.ru_bot" in lowered:
            ip_pool = "mailru-crawler"
        elif "yandex" in lowered:
            ip_pool = "yandex-crawler"
        elif "bingbot" in lowered:
            ip_pool = "bing-crawler"
        elif "baiduspider" in lowered:
            ip_pool = "baidu-crawler"
        else:
            ip_pool = "google-crawler"
        return agent, self._pools[ip_pool].address()

    # -- subcategory emitters ----------------------------------------------------

    def _emit_search_engine(self, profile, count) -> List[HttpRequest]:
        requests = []
        for timestamp in self._times(count):
            agent, src_ip = self._crawler_identity(profile)
            requests.append(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=src_ip,
                    host=profile.domain,
                    path=self._pick_path(_PAGE_PATHS),
                    user_agent=agent,
                    port=self._port(),
                )
            )
        return requests

    def _emit_file_grabber(self, profile, count) -> List[HttpRequest]:
        requests = []
        for timestamp in self._times(count):
            if profile.email_crawler_heavy and self.rng.random() < 0.951:
                agent = ua.pick(self.rng, ua.EMAIL_CRAWLERS)
                lowered = agent.lower()
                if "yahoo" in lowered:
                    src_ip = self._pools["yahoo-proxy"].address()
                elif "outlook" in lowered:
                    src_ip = self._pools["outlook-proxy"].address()
                else:
                    src_ip = self._pools["gmail-proxy"].address()
                path = self._pick_path(_EMAIL_ASSET_PATHS)
            else:
                agent = ua.pick(self.rng, ua.FILE_GRABBERS)
                src_ip = self._pools["google-crawler"].address()
                path = self._pick_path(_ASSET_PATHS)
            requests.append(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=src_ip,
                    host=profile.domain,
                    path=path,
                    user_agent=agent,
                    port=self._port(),
                )
            )
        return requests

    def _emit_script_software(self, profile, count) -> List[HttpRequest]:
        requests = []
        if profile.polling_fleet:
            # The status.json fleet: many addresses, one UA, one URI.
            # Each address polls on its own fixed period (with small
            # jitter) — the periodic-stream signature that both the
            # stream reclassifier and the interactive honeypot's
            # session analysis key on.
            fleet_size = max(count // 120, 1)
            fleet = self._pools["scripts"].addresses(fleet_size)
            per_bot = max(count // fleet_size, 1)
            emitted = 0
            for bot_ip in fleet:
                if emitted >= count:
                    break
                period = COLLECTION_SECONDS / per_bot
                start = float(self.rng.integers(0, max(int(period), 1)))
                for poll in range(per_bot):
                    if emitted >= count:
                        break
                    jitter = float(self.rng.normal(0, period * 0.02))
                    timestamp = int(
                        min(max(start + poll * period + jitter, 0), COLLECTION_SECONDS - 1)
                    )
                    requests.append(
                        HttpRequest(
                            timestamp=timestamp,
                            src_ip=bot_ip,
                            host=profile.domain,
                            path="/status.json",
                            user_agent=ua.POLLING_FLEET_UA,
                            port=80,
                        )
                    )
                    emitted += 1
            # Round down to the requested count exactly.
            return requests[:count]
        for timestamp in self._times(count):
            requests.append(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=self._pools["scripts"].address(),
                    host=profile.domain,
                    path=self._pick_path(_SCRIPT_PATHS),
                    user_agent=ua.pick(self.rng, ua.SCRIPT_TOOLS),
                    port=self._port(),
                )
            )
        return requests

    def _emit_malicious_request(self, profile, count) -> List[HttpRequest]:
        if profile.botnet_target:
            return self._botnet.requests(count, 0, COLLECTION_SECONDS)
        requests = []
        for timestamp in self._times(count):
            # Vulnerability probes; half disclose a script tool, half
            # send no UA at all — both routes end in Malicious Request.
            agent = (
                ua.pick(self.rng, ua.SCRIPT_TOOLS)
                if self.rng.random() < 0.5
                else ""
            )
            requests.append(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=self._pools["scripts"].address(),
                    host=profile.domain,
                    path=self._pick_path(_PROBE_PATHS),
                    user_agent=agent,
                    port=self._port(),
                )
            )
        return requests

    def _emit_referral_search(self, profile, count) -> List[HttpRequest]:
        templates = (
            _SEARCH_REFERERS_RU if profile.region == "ru" else _SEARCH_REFERERS_GLOBAL
        )
        requests = []
        for timestamp in self._times(count):
            template = templates[int(self.rng.integers(0, len(templates)))]
            requests.append(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=self._pools["users"].address(),
                    host=profile.domain,
                    path=self._pick_path(_PAGE_PATHS),
                    user_agent=ua.pick(self.rng, ua.PC_MOBILE_BROWSERS),
                    referer=template.format(d=profile.domain),
                    port=self._port(),
                )
            )
        return requests

    def _emit_referral_embedded(self, profile, count) -> List[HttpRequest]:
        # Forum/blog pages that genuinely link to the domain; register
        # them with the web filter so its fetch-and-check passes.
        page_count = max(min(count // 10, 12), 1)
        pages = []
        for index in range(page_count):
            url = f"https://forum-{index}.discuss-{profile.domain.split('.')[0]}.org/thread"
            self.web_filter.register_page(
                WebPage(url, category="forums-blogs", linked_domains={profile.domain})
            )
            pages.append(url)
        requests = []
        for timestamp in self._times(count):
            requests.append(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=self._pools["users"].address(),
                    host=profile.domain,
                    path=self._pick_path(_PAGE_PATHS),
                    user_agent=ua.pick(self.rng, ua.PC_MOBILE_BROWSERS),
                    referer=pages[int(self.rng.integers(0, page_count))],
                    port=self._port(),
                )
            )
        return requests

    def _emit_referral_malicious(self, profile, count) -> List[HttpRequest]:
        # Forged Referers: ~18% point at real pages that do NOT link to
        # us (the paper's 1,524 valid-URL subset); the rest at dead URLs.
        decoy_url = f"https://pages.decoy-{profile.domain.split('.')[0]}.net/article"
        self.web_filter.register_page(
            WebPage(decoy_url, category="forums-blogs", linked_domains=set())
        )
        requests = []
        for timestamp in self._times(count):
            if self.rng.random() < 0.18:
                referer = decoy_url
            else:
                referer = (
                    f"https://dead-link-{int(self.rng.integers(0, 1_000_000))}"
                    ".example-gone.net/x"
                )
            requests.append(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=self._pools["scripts"].address(),
                    host=profile.domain,
                    path=self._pick_path(_PAGE_PATHS),
                    user_agent=ua.pick(self.rng, ua.PC_MOBILE_BROWSERS),
                    referer=referer,
                    port=self._port(),
                )
            )
        return requests

    def _emit_pc_mobile(self, profile, count) -> List[HttpRequest]:
        requests = []
        for index, timestamp in enumerate(self._times(count)):
            requests.append(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=self._pools["users"].address(),
                    host=profile.domain,
                    # Distinct URIs keep organic visits off the stream
                    # reclassifier's radar.
                    path=f"/page/{index % 37}",
                    user_agent=ua.pick(self.rng, ua.PC_MOBILE_BROWSERS),
                    port=self._port(),
                )
            )
        return requests

    def _emit_inapp(self, profile, count) -> List[HttpRequest]:
        requests = []
        for index, timestamp in enumerate(self._times(count)):
            requests.append(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=self._pools["users"].address(),
                    host=profile.domain,
                    path=f"/shared/{index % 23}",
                    user_agent=ua.pick(self.rng, ua.INAPP_BROWSERS),
                    port=self._port(),
                )
            )
        return requests

    def _emit_other(self, profile, count) -> List[HttpRequest]:
        requests = []
        for timestamp in self._times(count):
            requests.append(
                HttpRequest(
                    timestamp=timestamp,
                    src_ip=self._pools["others"].address(),
                    host=profile.domain,
                    path="/",
                    user_agent="",
                    port=self._port(),
                )
            )
        return requests

    # -- contamination (what the Figure 9 filter removes) ---------------------------

    def _emit_contamination(self) -> List[HttpRequest]:
        """Scanner and establishment noise hitting the real deployment."""
        requests = []
        hosts = [p.domain for p in self.profiles]
        noise_count = max(int(sum(p.total() for p in self.profiles) * self.scale * 0.05), 10)
        for timestamp in self._times(noise_count):
            host = hosts[int(self.rng.integers(0, len(hosts)))]
            roll = self.rng.random()
            if roll < 0.6:
                # Cloud scanners (same pool as the no-hosting baseline).
                requests.append(
                    HttpRequest(
                        timestamp=timestamp,
                        src_ip=self._pools["scanners"].address(),
                        host=host,
                        path=self._pick_path(("/", "/robots.txt", "/admin")),
                        user_agent="",
                        port=80,
                    )
                )
            else:
                # Certificate validation (control-group signature).
                requests.append(
                    HttpRequest(
                        timestamp=timestamp,
                        src_ip=self._pools["letsencrypt"].address(),
                        host=host,
                        path="/.well-known/acme-challenge/token",
                        user_agent=ua.LETSENCRYPT_UA,
                        port=80,
                    )
                )
        return requests
