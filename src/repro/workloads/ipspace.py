"""Deterministic IP address pools for workload actors.

Each actor population draws source addresses from a named pool with a
fixed prefix, so that (a) runs are reproducible, (b) populations don't
collide, and (c) the reverse-IP oracle can attribute infrastructure by
registering PTR records as addresses are handed out.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.honeypot.reverse_ip import ReverseIpTable
from repro.errors import ConfigError, UnknownKeyError


class IpPool:
    """Hands out addresses ``prefix.x.y`` inside a /16-like space."""

    def __init__(
        self,
        prefix: str,
        rng: np.random.Generator,
        reverse_ip: Optional[ReverseIpTable] = None,
        ptr_suffix: Optional[str] = None,
        size: Optional[int] = None,
    ) -> None:
        parts = prefix.split(".")
        if len(parts) != 2 or not all(p.isdigit() and 0 <= int(p) <= 255 for p in parts):
            raise ConfigError(f"prefix must be two octets like '66.249': {prefix!r}")
        if size is not None and size <= 0:
            raise ConfigError("size must be positive when given")
        self.prefix = prefix
        self._rng = rng
        self._reverse_ip = reverse_ip
        self._ptr_suffix = ptr_suffix
        # A sized pool draws from a fixed, deterministic address set —
        # used for populations whose addresses must *recur* across
        # deployments (scanners, certificate validators) so the
        # two-stage filter can learn them from the calibration runs.
        self._fixed = (
            [f"{prefix}.{i // 250}.{i % 250 + 1}" for i in range(size)]
            if size is not None
            else None
        )

    def address(self) -> str:
        """A random address in the pool (PTR registered when configured)."""
        if self._fixed is not None:
            ip = self._fixed[int(self._rng.integers(0, len(self._fixed)))]
            third, fourth = ip.split(".")[2:]
        else:
            third = str(int(self._rng.integers(0, 256)))
            fourth = str(int(self._rng.integers(1, 255)))
            ip = f"{self.prefix}.{third}.{fourth}"
        if self._reverse_ip is not None and self._ptr_suffix is not None:
            hostname = f"host-{third}-{fourth}.{self._ptr_suffix}"
            self._reverse_ip.register(ip, hostname)
        return ip

    def addresses(self, count: int) -> list:
        return [self.address() for _ in range(count)]


#: Pool prefixes per actor population.  Documentation prefixes
#: (TEST-NETs) are used for noise populations so nothing collides with
#: the attributed infrastructure pools.
POOL_PREFIXES = {
    "google-crawler": "66.249",
    "bing-crawler": "40.77",
    "yandex-crawler": "77.88",
    "mailru-crawler": "94.100",
    "baidu-crawler": "180.76",
    "gmail-proxy": "74.125",
    "yahoo-proxy": "98.137",
    "outlook-proxy": "52.101",
    "google-proxy": "64.233",
    "aws-cloud": "3.88",
    "aws-monitor": "52.94",
    "hetzner-cloud": "88.198",
    "digitalocean-cloud": "167.99",
    "ovh-cloud": "51.68",
    "residential": "109.252",
    "scripts": "185.220",
    "scanners": "198.51",
    "letsencrypt": "172.65",
    "users": "109.168",
    "others": "203.0",
}

#: PTR suffixes registered for attributed pools (see
#: repro.honeypot.reverse_ip.KNOWN_SERVICE_SUFFIXES).
POOL_PTR_SUFFIXES = {
    "google-crawler": "googlebot.com",
    "bing-crawler": "search.msn.com",
    "yandex-crawler": "yandex.com",
    "mailru-crawler": "mail.ru",
    "baidu-crawler": "crawl.baidu.com",
    "gmail-proxy": "googleusercontent.com",
    "yahoo-proxy": "crawl.yahoo.net",
    "outlook-proxy": "search.msn.com",
    "google-proxy": "googleusercontent.com",
    "aws-cloud": "amazonaws.com",
    "aws-monitor": "ec2.internal",
    "hetzner-cloud": "hetzner.de",
    "digitalocean-cloud": "digitalocean.com",
    "ovh-cloud": "ovh.net",
    "residential": "comcast.net",
}


#: Fixed sizes for populations that must recur across deployments.
POOL_SIZES = {
    "scanners": 150,
    "letsencrypt": 12,
    "aws-monitor": 8,
}


def make_pool(
    name: str,
    rng: np.random.Generator,
    reverse_ip: Optional[ReverseIpTable] = None,
) -> IpPool:
    """The named pool, with PTR registration when the pool is attributed."""
    try:
        prefix = POOL_PREFIXES[name]
    except KeyError:
        raise UnknownKeyError(f"unknown IP pool {name!r}; known: {sorted(POOL_PREFIXES)}")
    return IpPool(
        prefix,
        rng,
        reverse_ip,
        POOL_PTR_SUFFIXES.get(name),
        size=POOL_SIZES.get(name),
    )
