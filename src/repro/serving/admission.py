"""Admission control: token buckets, priority queues, the shed ladder.

Every request passes through three gates before it may wait for a
worker:

1. **Bounded queue** — past ``queue_capacity`` waiting tickets the
   request is refused outright (``QUEUE_FULL``); backpressure beats an
   unbounded queue that converts overload into unbounded latency.
2. **Per-tenant token bucket** — the extracted
   :class:`~repro.resilience.ratelimit.TokenBucket`, one per tenant,
   so a single noisy tenant exhausts its own budget instead of
   everyone's (``RATE_LIMITED`` carries ``retry_after``).
3. **Shed ladder** — under pressure (queue depth or queued scan cost
   versus capacity) the controller raises the minimum admitted
   priority class: best-effort work sheds first, interactive work
   sheds only past ``shed_hard``.

Admitted requests get a :class:`~repro.serving.queries.Deadline`
stamped from their budget; the deadline travels with the ticket and is
enforced both on dequeue (dead tickets are never started) and inside
long scans via :class:`~repro.serving.queries.CostMeter` checkpoints.

The controller is not internally locked: the deterministic server
drives it from the single simulation loop, and the threaded mode
bypasses admission entirely (see :mod:`repro.serving.server`).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.resilience.ratelimit import RateLimit, TokenBucket
from repro.serving.queries import Deadline, Query

__all__ = [  # repro: noqa[REP104] admission record types; exported for annotations
    "AdmissionController",
    "AdmissionPolicy",
    "Decision",
    "QueryRequest",
    "Ticket",
]

#: Priority classes, lowest to highest.
BEST_EFFORT = 0
STANDARD = 1
INTERACTIVE = 2
_PRIORITIES = (BEST_EFFORT, STANDARD, INTERACTIVE)


class Decision(enum.Enum):
    """Outcome of offering one request to the controller."""

    ADMITTED = "admitted"
    RATE_LIMITED = "rate-limited"
    SHED = "shed"
    QUEUE_FULL = "queue-full"


@dataclass(frozen=True)
class QueryRequest:
    """One tenant-attributed query submission."""

    query: Query
    tenant: str = "default"
    priority: int = STANDARD
    #: Deadline budget in simulated seconds (``None`` → policy default).
    budget: Optional[int] = None
    #: Arrival time in simulated epoch seconds (``None`` → clock now).
    at: Optional[int] = None

    def __post_init__(self) -> None:
        if self.priority not in _PRIORITIES:
            raise ConfigError(
                f"priority must be one of {_PRIORITIES}, got {self.priority}"
            )
        if self.budget is not None and self.budget < 1:
            raise ConfigError(f"budget must be positive, got {self.budget}")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for the three admission gates."""

    #: Maximum tickets waiting for a worker.
    queue_capacity: int = 32
    #: Queued estimated-cost units considered "full" for the pressure
    #: signal (the second arm of the shed ladder).
    cost_capacity: int = 50_000
    #: Pressure above which best-effort work is shed.
    shed_start: float = 0.5
    #: Pressure above which everything below interactive is shed.
    shed_hard: float = 0.85
    #: Per-tenant rate limit (``None`` disables the bucket gate).
    tenant_limit: Optional[RateLimit] = field(
        default_factory=lambda: RateLimit(capacity=600, window_seconds=3600)
    )
    #: Deadline budget for requests that do not carry one.
    default_budget: int = 120

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ConfigError("queue_capacity must be at least 1")
        if self.cost_capacity < 1:
            raise ConfigError("cost_capacity must be at least 1")
        if not 0.0 < self.shed_start <= self.shed_hard <= 1.0:
            raise ConfigError(
                "need 0 < shed_start <= shed_hard <= 1, got "
                f"{self.shed_start}/{self.shed_hard}"
            )
        if self.default_budget < 1:
            raise ConfigError("default_budget must be at least 1 second")


@dataclass(frozen=True)
class Ticket:
    """An admitted request waiting for (or holding) a worker."""

    request: QueryRequest
    cost: int
    deadline: Deadline
    enqueued_at: int
    seq: int


class AdmissionController:
    """The bounded, priority-classed front door of the query tier."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self._queues: Dict[int, Deque[Ticket]] = {
            priority: deque() for priority in _PRIORITIES
        }
        self._buckets: Dict[str, TokenBucket] = {}
        self._queued_cost = 0
        # Offer-order counters an operator would graph.
        self.submitted = 0
        self.admitted = 0
        self.rate_limited = 0
        self.shed = 0
        self.queue_full = 0

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    @property
    def queued_cost(self) -> int:
        return self._queued_cost

    def pressure(self) -> float:
        """Load signal in [0, ~]: worst of depth and queued-cost ratios."""
        depth = len(self) / self.policy.queue_capacity
        cost = self._queued_cost / self.policy.cost_capacity
        return max(depth, cost)

    def shed_floor(self) -> int:
        """Minimum priority currently admitted."""
        pressure = self.pressure()
        if pressure >= self.policy.shed_hard:
            return INTERACTIVE
        if pressure >= self.policy.shed_start:
            return STANDARD
        return BEST_EFFORT

    def bucket_for(self, tenant: str) -> Optional[TokenBucket]:
        """The tenant's token bucket (created on first use)."""
        if self.policy.tenant_limit is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.policy.tenant_limit)
            self._buckets[tenant] = bucket
        return bucket

    def offer(
        self, request: QueryRequest, cost: int, now: int
    ) -> Tuple[Decision, Optional[Ticket], int]:
        """Run one request through the gates at ``now``.

        Returns ``(decision, ticket, retry_after)``; ``ticket`` is set
        only for :attr:`Decision.ADMITTED` and ``retry_after`` only for
        :attr:`Decision.RATE_LIMITED`.
        """
        self.submitted += 1
        if len(self) >= self.policy.queue_capacity:
            self.queue_full += 1
            return Decision.QUEUE_FULL, None, 0
        bucket = self.bucket_for(request.tenant)
        if bucket is not None and not bucket.try_acquire(now):
            self.rate_limited += 1
            return Decision.RATE_LIMITED, None, bucket.retry_after(now)
        if request.priority < self.shed_floor():
            self.shed += 1
            return Decision.SHED, None, 0
        budget = request.budget or self.policy.default_budget
        ticket = Ticket(
            request=request,
            cost=max(int(cost), 1),
            deadline=Deadline.after(now, budget),
            enqueued_at=now,
            seq=self.admitted,
        )
        self._queues[request.priority].append(ticket)
        self._queued_cost += ticket.cost
        self.admitted += 1
        return Decision.ADMITTED, ticket, 0

    def pop(self) -> Optional[Ticket]:
        """Next ticket: highest priority first, FIFO within a class."""
        for priority in reversed(_PRIORITIES):
            queue = self._queues[priority]
            if queue:
                ticket = queue.popleft()
                self._queued_cost -= ticket.cost
                return ticket
        return None

    def counters(self) -> Dict[str, int]:
        """Gate counters for reports and sweep gating."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rate_limited": self.rate_limited,
            "shed": self.shed,
            "queue_full": self.queue_full,
        }
