"""The query server: deterministic overload behaviour on simulated time.

:class:`QueryServer` fronts a
:class:`~repro.passivedns.database.PassiveDnsDatabase` with the
admission controller and a small worker pool, replayed as a
discrete-event simulation on :class:`~repro.clock.SimClock`: arrivals,
service completions, deadline reaping, and circuit-breaker transitions
all happen at simulated instants, so one seed reproduces an overload
episode bit-for-bit.

The request path, in order:

1. **Admission** (:mod:`repro.serving.admission`): bounded queue,
   per-tenant token bucket, shed ladder.  Refused requests finish
   immediately with ``QUEUE_FULL`` / ``RATE_LIMITED`` / ``SHED``.
2. **Dequeue**: a ticket whose deadline already passed is never
   started (``EXPIRED``); it consumed queue space, not a worker.
3. **Cache**: results are keyed on ``(cache_key, store generation)``;
   a fresh hit answers in zero service time (``CACHED``).
4. **Degradation**: for degradable (whole-store aggregate) queries the
   breaker is consulted; when open, the last known-good generation's
   cached value is served marked ``degraded`` (``DEGRADED``), or the
   query is refused (``REJECTED``) when no stale value exists yet.
5. **Execution**: the real query runs inside
   :meth:`~repro.passivedns.database.PassiveDnsDatabase.read_transaction`,
   charging a :class:`~repro.serving.queries.CostMeter`; injected slow
   workers stretch service, injected stuck workers pin the worker
   until the deadline reaper frees it (``CANCELLED``), and meter
   checkpoints cancel cooperatively mid-scan.  Served results are
   bit-identical to direct store calls — the server adds control
   flow, never transformation.

:meth:`QueryServer.serve_threaded` is the second mode: real threads,
no simulated schedule, used by the throughput benchmark and the
live-writer property tests (every result must still reflect one
committed generation).
"""

from __future__ import annotations

import enum
import heapq
import queue as queue_mod
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.clock import SimClock
from repro.errors import ConfigError, DeadlineExceededError
from repro.faults.plan import FaultSchedule
from repro.passivedns.database import PassiveDnsDatabase
from repro.resilience.breaker import CircuitBreaker
from repro.serving.admission import (
    AdmissionController,
    AdmissionPolicy,
    Decision,
    QueryRequest,
    Ticket,
)
from repro.serving.queries import CostMeter

__all__ = [  # repro: noqa[REP104] serving record types; exported for annotations
    "Disposition",
    "QueryServer",
    "ServedQuery",
    "ServerStats",
    "ServingPolicy",
]


class Disposition(enum.Enum):
    """How one submitted request left the serving tier."""

    #: Executed against the store at the current generation.
    SERVED = "served"
    #: Answered from the fresh (current-generation) result cache.
    CACHED = "cached"
    #: Breaker open: answered from a previous generation's cache.
    DEGRADED = "degraded"
    #: Refused by the shed ladder under pressure.
    SHED = "shed"
    #: Refused by the tenant's token bucket.
    RATE_LIMITED = "rate-limited"
    #: Refused because the admission queue was full.
    QUEUE_FULL = "queue-full"
    #: Deadline passed while queued; never started.
    EXPIRED = "expired"
    #: Started but cancelled — a meter checkpoint crossed the
    #: deadline, or a stuck worker was reaped.
    CANCELLED = "cancelled"
    #: Breaker open and no stale value to degrade to.
    REJECTED = "rejected"
    #: The query raised something unexpected (counts as unhandled).
    FAILED = "failed"


#: Dispositions that returned a value to the tenant.
ANSWERED = (Disposition.SERVED, Disposition.CACHED, Disposition.DEGRADED)


@dataclass
class ServedQuery:
    """The per-request outcome record."""

    request: QueryRequest
    seq: int
    submitted_at: int
    disposition: Disposition = Disposition.FAILED
    value: Any = None
    generation: int = -1
    degraded: bool = False
    cached: bool = False
    finished_at: int = -1
    queued_seconds: int = 0
    retry_after: int = 0
    detail: str = ""

    @property
    def answered(self) -> bool:
        return self.disposition in ANSWERED

    @property
    def latency(self) -> int:
        """Submission-to-finish seconds (0 for instant refusals)."""
        if self.finished_at < 0:
            return 0
        return self.finished_at - self.submitted_at


@dataclass(frozen=True)
class ServingPolicy:
    """Worker-pool and service-model knobs."""

    #: Concurrent workers in the simulated pool.
    workers: int = 2
    #: Flat service charge per executed query, simulated seconds.
    base_service_seconds: int = 1
    #: Scan-cost units converted to one simulated service second.
    cost_rate: int = 400
    #: Breaker: consecutive degradable-query failures that open it,
    #: and the cooldown before a half-open probe.
    breaker_failures: int = 2
    breaker_reset: int = 240

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError("workers must be at least 1")
        if self.base_service_seconds < 0:
            raise ConfigError("base_service_seconds must be non-negative")
        if self.cost_rate < 1:
            raise ConfigError("cost_rate must be at least 1")
        if self.breaker_failures < 1 or self.breaker_reset < 1:
            raise ConfigError("breaker knobs must be at least 1")


@dataclass
class ServerStats:
    """Counters and answered-query latencies for one server."""

    counts: Dict[str, int] = field(default_factory=dict)
    latencies: List[int] = field(default_factory=list)
    unhandled: int = 0

    def record(self, record: ServedQuery) -> None:
        name = record.disposition.value
        self.counts[name] = self.counts.get(name, 0) + 1
        if record.disposition is Disposition.FAILED:
            self.unhandled += 1
        if record.answered:
            self.latencies.append(record.latency)

    def count(self, disposition: Disposition) -> int:
        return self.counts.get(disposition.value, 0)

    def total(self) -> int:
        return sum(self.counts.values())

    def p99_latency(self) -> int:
        """Deterministic p99 over answered queries (0 when none)."""
        if not self.latencies:
            return 0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)]


class QueryServer:
    """Admission-controlled, deadline-aware serving over one store."""

    def __init__(
        self,
        db: PassiveDnsDatabase,
        clock: SimClock,
        admission: Optional[AdmissionPolicy] = None,
        serving: Optional[ServingPolicy] = None,
        schedule: Optional[FaultSchedule] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.db = db
        self.clock = clock
        self.serving = serving or ServingPolicy()
        self.admission = AdmissionController(admission)
        self.schedule = schedule
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=self.serving.breaker_failures,
            reset_timeout=self.serving.breaker_reset,
        )
        self.stats = ServerStats()
        #: Generation-tagged result caches.  ``_fresh`` answers only at
        #: the tagged generation; ``_stale`` keeps the last known-good
        #: value of any generation for degraded reads.
        self._fresh: Dict[Tuple[Any, ...], Tuple[int, Any]] = {}
        self._stale: Dict[Tuple[Any, ...], Tuple[int, Any]] = {}
        #: Guards the caches, stats, and results list — the state the
        #: threaded mode shares across workers.  The simulation state
        #: below (_running, _waiting, counters) is touched only by the
        #: single-threaded event loop and stays unguarded.
        self._lock = threading.Lock()
        self._results: List[ServedQuery] = []
        self._seq = 0
        self._free_workers = self.serving.workers
        #: In-flight work: a heap of (finish, seq, record, breaker signal).
        self._running: List[Tuple[int, int, ServedQuery, Optional[str]]] = []
        #: Admitted-but-waiting outcome records, keyed by ticket seq.
        self._waiting: Dict[int, ServedQuery] = {}

    # -- deterministic batch mode -------------------------------------------

    def serve(self, requests: Sequence[QueryRequest]) -> List[ServedQuery]:
        """Replay a batch through the tier; returns submission order.

        Arrivals run at each request's ``at`` (clamped to the clock;
        defaulting to "now"), burst injectors fan arrivals out, and the
        event loop interleaves arrivals with service completions in
        timestamp order.  The clock ends at the last completion.
        """
        base = self.clock.now
        first = len(self._results)
        arrivals = sorted(
            (max(req.at if req.at is not None else base, base), idx, req)
            for idx, req in enumerate(requests)
        )
        for at, _idx, request in arrivals:
            self._drain_until(at)
            if self.clock.now < at:
                self.clock.set_to(at)
            fanout = 1
            if self.schedule is not None:
                fanout = self.schedule.query_burst.factor(at)
            for _copy in range(fanout):
                self._submit(request, self.clock.now)
            self._dispatch()
        self._drain_until(None)
        return sorted(self._results[first:], key=lambda r: r.seq)

    def _submit(self, request: QueryRequest, now: int) -> None:
        record = ServedQuery(request=request, seq=self._seq, submitted_at=now)
        self._seq += 1
        cost = request.query.estimated_cost(self.db)
        decision, ticket, retry_after = self.admission.offer(request, cost, now)
        if decision is Decision.ADMITTED:
            assert ticket is not None
            self._waiting[ticket.seq] = record
            return
        record.retry_after = retry_after
        detail = {
            Decision.QUEUE_FULL: "admission queue full",
            Decision.RATE_LIMITED: "tenant budget exhausted",
            Decision.SHED: "shed under pressure",
        }[decision]
        disposition = {
            Decision.QUEUE_FULL: Disposition.QUEUE_FULL,
            Decision.RATE_LIMITED: Disposition.RATE_LIMITED,
            Decision.SHED: Disposition.SHED,
        }[decision]
        self._finalize(record, disposition, now, detail)

    def _dispatch(self) -> None:
        """Start queued tickets on free workers at the current instant."""
        now = self.clock.now
        while self._free_workers > 0:
            ticket = self.admission.pop()
            if ticket is None:
                return
            record = self._waiting.pop(ticket.seq)
            record.queued_seconds = now - ticket.enqueued_at
            if ticket.deadline.expired(now):
                self._finalize(
                    record,
                    Disposition.EXPIRED,
                    now,
                    "deadline passed while queued",
                )
                continue
            service, signal = self._execute(ticket, record, now)
            if service <= 0:
                if signal == "success":
                    self.breaker.record_success(now)
                elif signal == "failure":
                    self.breaker.record_failure(now)
                self._finalize(record, record.disposition, now, record.detail)
                continue
            self._free_workers -= 1
            heapq.heappush(
                self._running, (now + service, record.seq, record, signal)
            )

    def _drain_until(self, until: Optional[int]) -> None:
        """Process completions up to ``until`` (all of them if ``None``)."""
        while self._running and (until is None or self._running[0][0] <= until):
            finish, _seq, record, signal = heapq.heappop(self._running)
            if self.clock.now < finish:
                self.clock.set_to(finish)
            self._free_workers += 1
            if signal == "success":
                self.breaker.record_success(finish)
            elif signal == "failure":
                self.breaker.record_failure(finish)
            self._finalize(record, record.disposition, finish, record.detail)
            self._dispatch()

    def _execute(
        self, ticket: Ticket, record: ServedQuery, now: int
    ) -> Tuple[int, Optional[str]]:
        """Run one admitted ticket; returns (service seconds, signal).

        Zero service means the outcome is instant and consumed no
        worker (cache hit, breaker rejection).  The breaker signal is
        reported at the *finish* instant by the caller so event order
        matches a real pool.
        """
        request = ticket.request
        query = request.query
        key = query.cache_key()
        label = f"{query.kind} seq={record.seq}"
        degradable = query.degradable
        with self.db.read_transaction() as generation:
            hit = self._cache_get(key, generation)
            if hit is not None:
                record.value = hit
                record.generation = generation
                record.cached = True
                record.disposition = Disposition.CACHED
                return 0, None
            if degradable and not self.breaker.allow(now):
                stale = self._stale_get(key)
                if stale is not None:
                    stale_generation, value = stale
                    record.value = value
                    record.generation = stale_generation
                    record.degraded = True
                    record.disposition = Disposition.DEGRADED
                    record.detail = (
                        f"breaker open; served generation {stale_generation}"
                    )
                    return self.serving.base_service_seconds, None
                record.disposition = Disposition.REJECTED
                record.detail = "breaker open; no stale aggregate yet"
                return 0, None
            signal_ok = "success" if degradable else None
            signal_bad = "failure" if degradable else None
            if self.schedule is not None and self.schedule.stuck_worker.stuck(
                label
            ):
                record.disposition = Disposition.CANCELLED
                record.detail = "stuck worker reaped at deadline"
                return max(ticket.deadline.expires_at - now, 1), signal_bad
            delay = 0
            if self.schedule is not None:
                delay = self.schedule.slow_worker.delay(label)
            meter = CostMeter(
                started_at=now,
                deadline=ticket.deadline,
                cost_rate=self.serving.cost_rate,
                initial_delay=self.serving.base_service_seconds + delay,
            )
            try:
                value = query.execute(self.db, meter)
            except DeadlineExceededError as exc:
                record.disposition = Disposition.CANCELLED
                record.detail = str(exc)
                return max(meter.seconds(), 1), signal_bad
            except Exception as exc:  # repro: noqa[REP004] leaks become FAILED outcomes
                record.disposition = Disposition.FAILED
                record.detail = f"{type(exc).__name__}: {exc}"
                return max(meter.seconds(), 1), signal_bad
            record.value = value
            record.generation = generation
            record.disposition = Disposition.SERVED
            self._cache_fill(key, generation, value)
            return max(meter.seconds(), 1), signal_ok

    def _finalize(
        self,
        record: ServedQuery,
        disposition: Disposition,
        now: int,
        detail: str = "",
    ) -> None:
        record.disposition = disposition
        record.finished_at = now
        if detail:
            record.detail = detail
        with self._lock:
            self._results.append(record)
            self.stats.record(record)

    # -- result caches -------------------------------------------------------

    def _cache_get(self, key: Tuple[Any, ...], generation: int) -> Any:
        with self._lock:
            entry = self._fresh.get(key)
        if entry is not None and entry[0] == generation:
            return entry[1]
        return None

    def _stale_get(self, key: Tuple[Any, ...]) -> Optional[Tuple[int, Any]]:
        with self._lock:
            return self._stale.get(key)

    def _cache_fill(
        self, key: Tuple[Any, ...], generation: int, value: Any
    ) -> None:
        with self._lock:
            self._fresh[key] = (generation, value)
            self._stale[key] = (generation, value)

    # -- threaded mode -------------------------------------------------------

    def serve_threaded(
        self, requests: Sequence[QueryRequest], threads: int = 4
    ) -> List[ServedQuery]:
        """Execute a batch on real threads (no schedule, no deadlines).

        The throughput mode: admission, injectors, and simulated time
        are bypassed; every query executes (or hits cache) inside a
        read transaction, so each result still reflects exactly one
        committed store generation even with concurrent writers.
        Results come back in submission order.
        """
        if threads < 1:
            raise ConfigError("threads must be at least 1")
        results: List[Optional[ServedQuery]] = [None] * len(requests)
        work: "queue_mod.Queue[int]" = queue_mod.Queue()
        for idx in range(len(requests)):
            work.put(idx)

        def worker() -> None:
            while True:
                try:
                    idx = work.get_nowait()
                except queue_mod.Empty:
                    return
                request = requests[idx]
                record = ServedQuery(
                    request=request, seq=idx, submitted_at=self.clock.now
                )
                key = request.query.cache_key()
                try:
                    with self.db.read_transaction() as generation:
                        hit = self._cache_get(key, generation)
                        if hit is not None:
                            record.value = hit
                            record.cached = True
                            record.disposition = Disposition.CACHED
                        else:
                            record.value = request.query.execute(self.db)
                            record.disposition = Disposition.SERVED
                            self._cache_fill(key, generation, record.value)
                        record.generation = generation
                except Exception as exc:  # repro: noqa[REP004] leaks must not kill the pool
                    record.disposition = Disposition.FAILED
                    record.detail = f"{type(exc).__name__}: {exc}"
                record.finished_at = self.clock.now
                results[idx] = record

        pool = [
            threading.Thread(target=worker, name=f"serving-{n}")
            for n in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        done = [record for record in results if record is not None]
        with self._lock:
            for record in done:
                self._results.append(record)
                self.stats.record(record)
        return done
