"""The overload sweep: shed/degraded/served curves vs a clean baseline.

The serving-tier sibling of :func:`repro.core.validation.fault_sweep`:
build one synthetic store, replay one scripted multi-tenant workload
through a fresh :class:`~repro.serving.server.QueryServer` per
operating point (clean, slow workers, stuck workers, arrival storm),
and gate the outcome curves:

- the clean point must be perfectly clean — every request answered,
  nothing shed, nothing degraded, nothing cancelled;
- every point must account for every submission, leak zero unhandled
  exceptions, keep answered-query p99 latency bounded, and answer at
  least a floor fraction of submissions (overload protection must
  degrade service, not collapse it);
- non-degraded results are spot-checked bit-identical against direct
  store calls.

Everything — store, workload, schedules — derives from one seed, so a
sweep replays bit-identically (the determinism gate in CI runs it
twice and compares counts and injection-log fingerprints).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clock import SECONDS_PER_DAY, STUDY_START, SimClock, date_to_epoch
from repro.dns.name import DomainName
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.passivedns.database import PassiveDnsDatabase
from repro.rand import derive_seed, make_rng
from repro.resilience.ratelimit import RateLimit
from repro.serving.admission import AdmissionPolicy, QueryRequest
from repro.serving.queries import (
    ActivityWindowQuery,
    DailySeriesQuery,
    Query,
    TimelineQuery,
    TopDomainsQuery,
)
from repro.serving.server import (
    Disposition,
    QueryServer,
    ServedQuery,
    ServingPolicy,
)

__all__ = [  # repro: noqa[REP104] sweep record types; exported for annotations
    "OverloadPoint",
    "OverloadReport",
    "overload_sweep",
    "scripted_workload",
    "synthetic_store",
]

#: TLD mix for the synthetic store (echoes the paper's top-TLD skew).
_TLDS = ("com", "net", "org", "xyz", "top", "info", "biz")

#: Days of traffic the synthetic store covers.
_STORE_DAYS = 730


def synthetic_store(
    seed: int,
    domains: int = 500,
    rows_per_domain: int = 48,
    spill_dir: Optional[Any] = None,
) -> PassiveDnsDatabase:
    """A small deterministic store for serving experiments.

    ``domains`` registered domains across a fixed TLD mix, each with
    ``rows_per_domain`` observations scattered over two years from the
    study start — big enough that whole-store scans have real cost,
    small enough that a sweep runs in seconds.  ``spill_dir`` backs
    the store with the on-disk segment store, for experiments that
    interleave ``spill_commit`` with serving.
    """
    rng = make_rng(derive_seed(seed, "serving-store"))
    names = [
        DomainName(f"nx-{index:05d}.{_TLDS[index % len(_TLDS)]}")
        for index in range(domains)
    ]
    db = PassiveDnsDatabase(spill_dir=spill_dir)
    ids = db.intern_many(names)
    start = date_to_epoch(STUDY_START)
    n_rows = domains * rows_per_domain
    row_ids = np.repeat(ids, rows_per_domain)
    timestamps = rng.integers(
        start, start + _STORE_DAYS * SECONDS_PER_DAY, size=n_rows
    )
    counts = rng.integers(1, 6, size=n_rows)
    db.add_batch(row_ids, timestamps, counts)
    return db


def scripted_workload(
    db: PassiveDnsDatabase,
    seed: int,
    queries: int = 240,
    tenants: int = 5,
    start: Optional[int] = None,
    horizon: int = 5400,
) -> List[QueryRequest]:
    """A deterministic multi-tenant query mix over ``horizon`` seconds.

    Roughly a quarter whole-store aggregates (degradable), half
    per-domain series/timelines, and the rest activity-window scans,
    spread across ``tenants`` tenants and three priority classes with
    kind-appropriate deadline budgets.
    """
    rng = make_rng(derive_seed(seed, "serving-workload"))
    if start is None:
        start = date_to_epoch(STUDY_START)
    domains = db.all_domains()
    store_start = date_to_epoch(STUDY_START)
    store_end = store_start + _STORE_DAYS * SECONDS_PER_DAY
    offsets = np.sort(rng.integers(0, horizon, size=queries))
    requests: List[QueryRequest] = []
    for index in range(queries):
        roll = float(rng.random())
        domain = str(domains[int(rng.integers(0, len(domains)))])
        query: Query
        if roll < 0.25:
            query = TopDomainsQuery(n=int((1 + rng.integers(0, 3)) * 5))
            budget = 90
        elif roll < 0.55:
            days = int(rng.integers(30, 181))
            window_start = int(
                rng.integers(store_start, store_end - days * SECONDS_PER_DAY)
            )
            query = DailySeriesQuery(
                domain=domain,
                start=window_start,
                end=window_start + days * SECONDS_PER_DAY,
            )
            budget = 60
        elif roll < 0.80:
            pivot = int(
                rng.integers(
                    store_start + 30 * SECONDS_PER_DAY,
                    store_end - 30 * SECONDS_PER_DAY,
                )
            )
            query = TimelineQuery(domain=domain, pivot=pivot)
            budget = 60
        else:
            query = ActivityWindowQuery(domain=domain)
            budget = 150
        priority_roll = float(rng.random())
        if priority_roll < 0.25:
            priority = 0
        elif priority_roll < 0.90:
            priority = 1
        else:
            priority = 2
        requests.append(
            QueryRequest(
                query=query,
                tenant=f"tenant-{int(rng.integers(0, tenants))}",
                priority=priority,
                budget=budget,
                at=start + int(offsets[index]),
            )
        )
    return requests


@dataclass(frozen=True)
class OverloadPoint:
    """Outcome curves for one operating point of the sweep."""

    label: str
    submitted: int
    counts: Dict[str, int]
    p99_latency: int
    unhandled: int
    identity_mismatches: int
    breaker_opened: int
    fingerprint: str

    def count(self, disposition: Disposition) -> int:
        return self.counts.get(disposition.value, 0)

    @property
    def answered(self) -> int:
        return (
            self.count(Disposition.SERVED)
            + self.count(Disposition.CACHED)
            + self.count(Disposition.DEGRADED)
        )

    @property
    def answered_fraction(self) -> float:
        return self.answered / max(self.submitted, 1)

    def row(self) -> str:
        return (
            f"{self.label:<8} submitted={self.submitted:<4} "
            f"served={self.count(Disposition.SERVED):<4} "
            f"cached={self.count(Disposition.CACHED):<4} "
            f"degraded={self.count(Disposition.DEGRADED):<3} "
            f"shed={self.count(Disposition.SHED):<3} "
            f"cancelled={self.count(Disposition.CANCELLED):<3} "
            f"expired={self.count(Disposition.EXPIRED):<3} "
            f"p99={self.p99_latency}s"
        )


@dataclass(frozen=True)
class OverloadReport:
    """All sweep points plus the gates CI enforces."""

    seed: int
    points: Tuple[OverloadPoint, ...]
    latency_bound: int
    min_answered_fraction: float

    def baseline(self) -> OverloadPoint:
        for point in self.points:
            if point.label == "clean":
                return point
        raise ConfigError("sweep has no clean baseline point")

    def regressions(self) -> List[str]:
        """Gate violations (empty = the sweep passes)."""
        problems: List[str] = []
        baseline = None
        for point in self.points:
            if point.label == "clean":
                baseline = point
                break
        if baseline is None:
            return ["sweep has no clean baseline point"]
        for name in (
            Disposition.SHED,
            Disposition.DEGRADED,
            Disposition.CANCELLED,
            Disposition.EXPIRED,
            Disposition.REJECTED,
            Disposition.QUEUE_FULL,
            Disposition.FAILED,
        ):
            if baseline.count(name) != 0:
                problems.append(
                    f"clean baseline {name.value} = {baseline.count(name)}, "
                    "expected 0"
                )
        if baseline.answered != baseline.submitted:
            problems.append(
                f"clean baseline answered {baseline.answered} of "
                f"{baseline.submitted} submissions"
            )
        for point in self.points:
            accounted = sum(point.counts.values())
            if accounted != point.submitted:
                problems.append(
                    f"{point.label}: {accounted} outcomes for "
                    f"{point.submitted} submissions"
                )
            if point.unhandled != 0:
                problems.append(
                    f"{point.label}: {point.unhandled} unhandled exceptions"
                )
            if point.identity_mismatches != 0:
                problems.append(
                    f"{point.label}: {point.identity_mismatches} served "
                    "results differ from direct store calls"
                )
            if point.p99_latency > self.latency_bound:
                problems.append(
                    f"{point.label}: p99 latency {point.p99_latency}s over "
                    f"bound {self.latency_bound}s"
                )
            if point.answered_fraction < self.min_answered_fraction:
                problems.append(
                    f"{point.label}: answered fraction "
                    f"{point.answered_fraction:.2f} below floor "
                    f"{self.min_answered_fraction:.2f}"
                )
        return problems

    def rows(self) -> List[str]:
        return [point.row() for point in self.points]


def _values_equal(left: Any, right: Any) -> bool:
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return bool(np.array_equal(np.asarray(left), np.asarray(right)))
    return bool(left == right)


def verify_identity(
    db: PassiveDnsDatabase, records: Sequence[ServedQuery], limit: int = 25
) -> int:
    """Count served results that differ from a direct store call.

    The core serving contract: the tier adds admission and caching,
    never transformation — a non-degraded result must be bit-identical
    to calling the store directly.
    """
    mismatches = 0
    checked = 0
    for record in records:
        if record.disposition is not Disposition.SERVED:
            continue
        direct = record.request.query.execute(db)
        if not _values_equal(record.value, direct):
            mismatches += 1
        checked += 1
        if checked >= limit:
            break
    return mismatches


def default_points() -> List[Tuple[str, FaultPlan]]:
    """The standard operating points, mildest to most hostile."""
    return [
        ("clean", FaultPlan()),
        ("slow", FaultPlan(slow_worker_rate=0.30, slow_worker_seconds=30)),
        (
            "stuck",
            FaultPlan(
                slow_worker_rate=0.20,
                slow_worker_seconds=30,
                stuck_worker_rate=0.15,
            ),
        ),
        ("storm", FaultPlan.overload(0.30, bursts=3, fanout=8)),
    ]


def overload_sweep(
    seed: int = 0,
    domains: int = 500,
    queries: int = 240,
    points: Optional[Sequence[Tuple[str, FaultPlan]]] = None,
    horizon: int = 5400,
    latency_bound: int = 420,
    min_answered_fraction: float = 0.5,
    identity_checks: int = 25,
    waves: int = 6,
) -> OverloadReport:
    """Replay one workload across operating points and gate the curves.

    The workload runs in ``waves`` with a small writer committing rows
    between them: every commit bumps the store generation, so fresh
    caches invalidate and degradable aggregates genuinely re-execute —
    which is what gives injected stuck workers something to wedge and
    the breaker something to open.  Identity is verified per wave,
    before the store moves past the generation the wave was served at.
    """
    start = date_to_epoch(STUDY_START) + 400 * SECONDS_PER_DAY
    workload = scripted_workload(
        synthetic_store(seed, domains=domains),
        seed,
        queries=queries,
        start=start,
        horizon=horizon,
    )
    admission = AdmissionPolicy(
        queue_capacity=16,
        cost_capacity=6_000,
        shed_start=0.45,
        shed_hard=0.80,
        tenant_limit=RateLimit(capacity=200, window_seconds=3600),
        default_budget=120,
    )
    serving = ServingPolicy(
        workers=2,
        base_service_seconds=1,
        cost_rate=200,
        # One wedged aggregate opens the circuit: the sweep wants the
        # degraded-read ladder exercised, not merely reachable.
        breaker_failures=1,
        breaker_reset=240,
    )
    wave_size = -(-len(workload) // max(waves, 1))
    results: List[OverloadPoint] = []
    for label, plan in points if points is not None else default_points():
        # Every point replays against its own freshly built store (the
        # interleaved writer below mutates it) with the burst horizon
        # pinned to the workload window so arrival storms overlap it.
        db = synthetic_store(seed, domains=domains)
        writer = make_rng(derive_seed(seed, "serving-writer"))
        store_names = db.all_domains()
        bound_plan = dataclasses.replace(
            plan, horizon_start=start, horizon_end=start + horizon
        )
        schedule = bound_plan.schedule(derive_seed(seed, f"sweep-{label}"))
        server = QueryServer(
            db,
            SimClock(start),
            admission=admission,
            serving=serving,
            schedule=schedule,
        )
        submitted = 0
        mismatches = 0
        for lo in range(0, len(workload), wave_size):
            records = server.serve(workload[lo : lo + wave_size])
            submitted += len(records)
            mismatches += verify_identity(db, records, limit=identity_checks)
            for _commit in range(3):
                db.add(
                    store_names[int(writer.integers(0, len(store_names)))],
                    int(
                        writer.integers(
                            date_to_epoch(STUDY_START),
                            date_to_epoch(STUDY_START)
                            + _STORE_DAYS * SECONDS_PER_DAY,
                        )
                    ),
                    int(writer.integers(1, 4)),
                )
        results.append(
            OverloadPoint(
                label=label,
                submitted=submitted,
                counts=dict(server.stats.counts),
                p99_latency=server.stats.p99_latency(),
                unhandled=server.stats.unhandled,
                identity_mismatches=mismatches,
                breaker_opened=server.breaker.times_opened,
                fingerprint=schedule.fingerprint(),
            )
        )
    return OverloadReport(
        seed=seed,
        points=tuple(results),
        latency_bound=latency_bound,
        min_answered_fraction=min_answered_fraction,
    )
