"""Overload-hardened multi-tenant query serving tier.

The analyses in this repo are batch jobs; this package turns the
:class:`~repro.passivedns.database.PassiveDnsDatabase` into a *served*
resource the way a passive-DNS measurement platform would expose it to
analysts: a typed query API in front of the store, an admission
controller (bounded queue, per-tenant token buckets, deadline
propagation, priority load shedding), and graceful degradation —
when a circuit breaker over fresh aggregates opens, eligible queries
are answered from the previous generation's cache and marked
``degraded``.

Everything runs on simulated time (:class:`~repro.clock.SimClock`),
so an overload episode — burst arrivals, slow workers, a wedged
worker pinned until its deadline reaper fires — replays bit-identically
from a seed, exactly like the ingest-side fault sweeps.

Layout:

- :mod:`repro.serving.queries` — typed queries, deadlines, cost meter;
- :mod:`repro.serving.admission` — token buckets, priority queues,
  the shed ladder;
- :mod:`repro.serving.server` — the deterministic discrete-event
  server (plus a real-thread mode for throughput benchmarks);
- :mod:`repro.serving.sweep` — the overload sweep gating shed /
  degraded / served curves against a clean baseline.
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionPolicy,
    Decision,
    QueryRequest,
    Ticket,
)
from repro.serving.queries import (
    ActivityWindowQuery,
    CostMeter,
    DailySeriesQuery,
    Deadline,
    Query,
    TimelineQuery,
    TopDomainsQuery,
    query_from_payload,
)
from repro.serving.server import (
    Disposition,
    QueryServer,
    ServedQuery,
    ServerStats,
    ServingPolicy,
)
from repro.serving.sweep import (
    OverloadPoint,
    OverloadReport,
    overload_sweep,
    scripted_workload,
    synthetic_store,
)

__all__ = [  # repro: noqa[REP104] serving record types; exported for annotations
    "ActivityWindowQuery",
    "AdmissionController",
    "AdmissionPolicy",
    "CostMeter",
    "DailySeriesQuery",
    "Deadline",
    "Decision",
    "Disposition",
    "OverloadPoint",
    "OverloadReport",
    "Query",
    "QueryRequest",
    "QueryServer",
    "ServedQuery",
    "ServerStats",
    "ServingPolicy",
    "Ticket",
    "TimelineQuery",
    "TopDomainsQuery",
    "overload_sweep",
    "query_from_payload",
    "scripted_workload",
    "synthetic_store",
]
