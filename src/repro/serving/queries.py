"""Typed queries, deadlines, and the cooperative cost meter.

A query is a frozen value object: hashable (its :meth:`Query.cache_key`
keys the server's generation-tagged result caches), costed up front
(:meth:`Query.estimated_cost` feeds the admission controller's shed
ladder), and executed against the store under a read transaction so a
result always reflects one committed generation.

Long scans cooperate with deadlines through a :class:`CostMeter`:
``execute`` calls :meth:`CostMeter.tick` between strides, and the
meter raises :class:`~repro.errors.DeadlineExceededError` at the first
checkpoint past the deadline — cancellation quantized at stride
boundaries, the way a real cooperative cancellation point works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.clock import SECONDS_PER_DAY
from repro.dns.name import DomainName
from repro.errors import ConfigError, DeadlineExceededError
from repro.passivedns.database import PassiveDnsDatabase

__all__ = [  # repro: noqa[REP104] query value types; exported for annotations
    "ActivityWindowQuery",
    "CostMeter",
    "DailySeriesQuery",
    "Deadline",
    "Query",
    "TimelineQuery",
    "TopDomainsQuery",
    "query_from_payload",
]

#: Domains examined between deadline checkpoints in whole-store scans.
CHECKPOINT_STRIDE = 2048

#: Days of per-domain series materialized between deadline checkpoints.
DAY_STRIDE = 365


@dataclass(frozen=True)
class Deadline:
    """An absolute completion bound in simulated epoch seconds."""

    expires_at: int

    @classmethod
    def after(cls, now: int, budget: int) -> "Deadline":
        if budget < 1:
            raise ConfigError(f"deadline budget must be positive, got {budget}")
        return cls(expires_at=now + budget)

    def expired(self, now: int) -> bool:
        return now > self.expires_at

    def remaining(self, now: int) -> int:
        return max(self.expires_at - now, 0)


class CostMeter:
    """Charges simulated service time and cancels past the deadline.

    The server charges each query ``initial_delay`` seconds up front
    (base service plus any injected slowness) and one further second
    per ``cost_rate`` cost units of scan work.  Queries report work by
    calling :meth:`tick` between strides; the first checkpoint whose
    projected completion time passes the deadline raises
    :class:`~repro.errors.DeadlineExceededError`, so a cancelled query
    has still consumed the worker up to that checkpoint.
    """

    def __init__(
        self,
        started_at: int,
        deadline: Optional[Deadline],
        cost_rate: int,
        initial_delay: int = 0,
    ) -> None:
        if cost_rate < 1:
            raise ConfigError(f"cost_rate must be positive, got {cost_rate}")
        if initial_delay < 0:
            raise ConfigError("initial_delay must be non-negative")
        self.started_at = started_at
        self.deadline = deadline
        self.cost_rate = cost_rate
        self.initial_delay = initial_delay
        self._units = 0
        self.checkpoints = 0

    def seconds(self) -> int:
        """Simulated service seconds consumed so far."""
        return self.initial_delay + self._units // self.cost_rate

    def tick(self, units: int = 0) -> None:
        """Charge ``units`` of work and cancel if past the deadline."""
        self._units += int(units)
        self.checkpoints += 1
        if self.deadline is None:
            return
        projected = self.started_at + self.seconds()
        if projected > self.deadline.expires_at:
            raise DeadlineExceededError(
                f"deadline t={self.deadline.expires_at} passed at "
                f"t={projected} (checkpoint {self.checkpoints})"
            )


class Query:
    """Base class for typed queries; subclasses are frozen dataclasses."""

    #: Wire name used in scripted query files and cache keys.
    kind = "query"
    #: Whether the breaker may answer this query from a stale
    #: generation when fresh aggregates are unhealthy.  Only
    #: whole-store aggregates degrade gracefully; point lookups do not.
    degradable = False

    def cache_key(self) -> Tuple[Any, ...]:
        """Hashable identity for the generation-tagged result caches."""
        raise NotImplementedError

    def estimated_cost(self, db: PassiveDnsDatabase) -> int:
        """Admission-time cost estimate in abstract scan units."""
        raise NotImplementedError

    def execute(
        self, db: PassiveDnsDatabase, meter: Optional[CostMeter] = None
    ) -> Any:
        """Run against the store, ticking ``meter`` between strides."""
        raise NotImplementedError


def _avg_rows_per_domain(db: PassiveDnsDatabase) -> int:
    return db.row_count() // max(db.unique_domains(), 1)


@dataclass(frozen=True)
class TopDomainsQuery(Query):
    """The ``n`` busiest domains by total query count.

    Deterministic under ties: ranked by ``(-total, name)``, so equal
    totals break lexicographically regardless of intern order.
    """

    n: int = 10

    kind = "top-domains"
    degradable = True

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError(f"top-domains n must be positive, got {self.n}")

    def cache_key(self) -> Tuple[Any, ...]:
        return (self.kind, self.n)

    def estimated_cost(self, db: PassiveDnsDatabase) -> int:
        return max(db.unique_domains(), 1)

    def execute(
        self, db: PassiveDnsDatabase, meter: Optional[CostMeter] = None
    ) -> List[Tuple[str, int]]:
        domains, _first, _last, totals = db.aggregate_snapshot()
        best: List[Tuple[int, str]] = []
        for lo in range(0, len(domains), CHECKPOINT_STRIDE):
            hi = min(lo + CHECKPOINT_STRIDE, len(domains))
            if meter is not None:
                meter.tick(hi - lo)
            stride = [(-int(totals[i]), str(domains[i])) for i in range(lo, hi)]
            best = sorted(best + stride)[: self.n]
        return [(name, -neg_total) for neg_total, name in best]


@dataclass(frozen=True)
class DailySeriesQuery(Query):
    """Per-day query counts for one domain over ``[start, end)``."""

    domain: str
    start: int
    end: int

    kind = "daily-series"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigError("daily-series end must follow start")

    @property
    def days(self) -> int:
        return (self.end - self.start) // SECONDS_PER_DAY

    def cache_key(self) -> Tuple[Any, ...]:
        return (self.kind, self.domain, self.start, self.end)

    def estimated_cost(self, db: PassiveDnsDatabase) -> int:
        return self.days + _avg_rows_per_domain(db)

    def execute(
        self, db: PassiveDnsDatabase, meter: Optional[CostMeter] = None
    ) -> np.ndarray:
        if meter is not None:
            meter.tick(self.estimated_cost(db))
        return db.daily_series_for(DomainName(self.domain), self.start, self.end)


@dataclass(frozen=True)
class TimelineQuery(Query):
    """Daily counts around a pivot (the Figure 6 expiry-timeline shape)."""

    domain: str
    pivot: int
    days_before: int = 30
    days_after: int = 30

    kind = "timeline"

    def __post_init__(self) -> None:
        if self.days_before < 0 or self.days_after < 0:
            raise ConfigError("timeline day spans must be non-negative")
        if self.days_before + self.days_after == 0:
            raise ConfigError("timeline must cover at least one day")

    def cache_key(self) -> Tuple[Any, ...]:
        return (
            self.kind,
            self.domain,
            self.pivot,
            self.days_before,
            self.days_after,
        )

    def estimated_cost(self, db: PassiveDnsDatabase) -> int:
        return self.days_before + self.days_after + _avg_rows_per_domain(db)

    def execute(
        self, db: PassiveDnsDatabase, meter: Optional[CostMeter] = None
    ) -> np.ndarray:
        if meter is not None:
            meter.tick(self.estimated_cost(db))
        return db.timeline_around(
            DomainName(self.domain),
            self.pivot,
            self.days_before,
            self.days_after,
        )


@dataclass(frozen=True)
class ActivityWindowQuery(Query):
    """Lifespan and active-day count for one domain.

    Walks the domain's daily series in :data:`DAY_STRIDE`-day strides
    (a deadline checkpoint per stride) counting days with at least one
    query — the long-tail shape behind the paper's short-lived-NXD
    observation.
    """

    domain: str

    kind = "activity-window"

    def cache_key(self) -> Tuple[Any, ...]:
        return (self.kind, self.domain)

    def estimated_cost(self, db: PassiveDnsDatabase) -> int:
        # Lifespan is unknown until the profile is read; budget for a
        # year of series plus the domain's share of rows.
        return DAY_STRIDE + _avg_rows_per_domain(db)

    def execute(
        self, db: PassiveDnsDatabase, meter: Optional[CostMeter] = None
    ) -> Optional[Dict[str, int]]:
        name = DomainName(self.domain)
        profile = db.profile(name)
        if meter is not None:
            meter.tick(1)
        if profile is None:
            return None
        start = (profile.first_seen // SECONDS_PER_DAY) * SECONDS_PER_DAY
        end = profile.last_seen + 1
        active_days = 0
        cursor = start
        while cursor < end:
            stride_end = min(cursor + DAY_STRIDE * SECONDS_PER_DAY, end)
            # Round the stride up to whole days so no partial day is lost.
            span = stride_end - cursor
            days = -(-span // SECONDS_PER_DAY)
            series = db.daily_series_for(
                name, cursor, cursor + days * SECONDS_PER_DAY
            )
            active_days += int(np.count_nonzero(series))
            if meter is not None:
                meter.tick(days + _avg_rows_per_domain(db))
            cursor += days * SECONDS_PER_DAY
        return {
            "domain": str(profile.domain),
            "first_seen": int(profile.first_seen),
            "last_seen": int(profile.last_seen),
            "total_queries": int(profile.total_queries),
            "lifespan_days": int(
                (profile.last_seen - profile.first_seen) // SECONDS_PER_DAY
            )
            + 1,
            "active_days": active_days,
        }


_KINDS: Dict[str, Type[Query]] = {
    cls.kind: cls
    for cls in (
        TopDomainsQuery,
        DailySeriesQuery,
        TimelineQuery,
        ActivityWindowQuery,
    )
}


def query_from_payload(payload: Dict[str, Any]) -> Query:
    """Build a typed query from a scripted-query-file record.

    The record's ``kind`` selects the query class; remaining keys are
    its constructor fields.  Unknown kinds and bad fields raise
    :class:`~repro.errors.ConfigError` so a malformed script fails the
    batch up front rather than mid-run.
    """
    kind = payload.get("kind")
    cls = _KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(_KINDS))
        raise ConfigError(f"unknown query kind {kind!r} (known: {known})")
    fields = {key: value for key, value in payload.items() if key != "kind"}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ConfigError(f"bad {kind} query fields: {exc}") from exc
