"""Exception hierarchy shared by every repro subsystem.

All library errors derive from :class:`ReproError` so callers can catch
one base class at API boundaries.  Subsystem-specific errors live here
rather than in their packages to avoid import cycles between substrates
that reference each other's failure modes (e.g. the resolver raising a
zone error).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """An invalid argument or configuration value was passed to an API.

    Derives from :class:`ValueError` so that callers validating inputs
    the conventional way keep working.
    """


class UnknownKeyError(ReproError, KeyError):
    """A lookup by name or key did not match anything."""


class RangeError(ReproError, IndexError):
    """An index or offset fell outside the supported range."""


class DomainNameError(ReproError, ValueError):
    """A string is not a valid DNS domain name."""


class WireFormatError(ReproError, ValueError):
    """A DNS message could not be encoded to or decoded from wire format."""


class ZoneError(ReproError):
    """A zone file or zone operation is inconsistent."""


class ResolutionError(ReproError):
    """The iterative resolver could not complete a lookup."""


class TransientError(ReproError):
    """A failure that may succeed if the operation is retried.

    The resilience primitives (:class:`repro.resilience.RetryPolicy`,
    dead-letter replay) treat this branch of the hierarchy as
    retriable; everything else is permanent and propagates.
    """


class TransientStoreError(TransientError):
    """A store write failed transiently (the BigQuery load-job analogue)."""


class TransientResolutionError(TransientError, ResolutionError):
    """An upstream resolution failed transiently (timeout, SERVFAIL)."""


class InjectedFaultError(TransientError):
    """A failure deliberately raised by the fault-injection harness."""


class InjectedCrashError(ReproError):
    """The fault harness killed the writer at a durability boundary.

    Deliberately *not* a :class:`TransientError`: a crash models the
    whole process dying, so retry machinery must never absorb it —
    recovery happens at the next :meth:`SpillStore.open`, not in-line.
    """


class CorruptArchiveError(ReproError):
    """A persisted artifact failed an integrity check on read.

    Raised instead of leaking ``zipfile.BadZipFile`` / ``OSError`` /
    checksum mismatches from the persistence layer.  Carries the
    offending ``path`` and a human-readable ``detail``.
    """

    def __init__(self, path: object, detail: str) -> None:
        self.path = str(path)
        self.detail = detail
        super().__init__(f"corrupt archive {self.path}: {detail}")


class CircuitOpenError(ReproError):
    """A circuit breaker is open and refused the call."""


class DeadlineExceededError(ReproError):
    """A query ran past its admission deadline and was cancelled.

    Raised cooperatively: long scans call a cost meter's checkpoint
    between strides, so cancellation is quantized at stride boundaries
    rather than interrupting mid-computation.
    """


class LifecycleError(ReproError):
    """An illegal domain lifecycle transition was attempted."""


class RegistryError(ReproError):
    """A registry operation failed (duplicate registration, unknown domain...)."""


class RateLimitExceeded(ReproError):
    """A rate-limited API (e.g. the blocklist store) refused a query.

    ``retry_after`` carries the seconds (simulated) until the limiter's
    window resets and a retry can succeed, when the limiter knows it;
    ``None`` otherwise.  The serving tier surfaces it to tenants.
    """

    def __init__(self, message: str, retry_after=None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class HoneypotError(ReproError):
    """The honeypot recorder or categorizer was misused."""


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""
