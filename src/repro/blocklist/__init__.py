"""Domain blocklist substrate.

Stands in for the Palo Alto Networks URL-filtering blocklist the paper
cross-references 20 M sampled expired NXDomains against (§5.2,
Figure 8).  Provides the four threat categories of Figure 8, an
append-only store with the *rate-limited* query API that forced the
paper's authors to sample (we reproduce the constraint so the sampling
methodology is exercised, not bypassed), and feed generation for
populating the store from the workload's malicious actors.
"""

from repro.blocklist.categories import ThreatCategory
from repro.blocklist.feeds import FeedGenerator
from repro.blocklist.store import BlocklistEntry, BlocklistStore, RateLimit

__all__ = [
    "BlocklistEntry",
    "BlocklistStore",
    "FeedGenerator",
    "RateLimit",
    "ThreatCategory",
]
