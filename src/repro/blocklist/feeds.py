"""Synthetic blocklist feed generation.

Populates a :class:`~repro.blocklist.store.BlocklistStore` from a
malicious-domain population with the category priors of Figure 8
(malware 79%, grayware 9%, phishing 8%, C&C 4%), standing in for the
vendor's continuously updated intelligence feed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocklist.categories import PAPER_CATEGORY_SHARES, ThreatCategory
from repro.blocklist.store import BlocklistEntry, BlocklistStore
from repro.dns.name import DomainName
from repro.rand import weighted_choice
from repro.errors import ConfigError


class FeedGenerator:
    """Assigns threat categories to malicious domains and emits entries."""

    def __init__(
        self,
        rng: np.random.Generator,
        category_shares: Optional[
            Sequence[Tuple[ThreatCategory, float]]
        ] = None,
    ) -> None:
        shares = (
            list(category_shares)
            if category_shares is not None
            else list(PAPER_CATEGORY_SHARES)
        )
        total = sum(weight for _, weight in shares)
        if total <= 0:
            raise ConfigError("category shares must sum to a positive value")
        self._rng = rng
        self._categories = [category for category, _ in shares]
        self._weights = [weight for _, weight in shares]

    def assign_category(self, domain: DomainName) -> ThreatCategory:
        """Draw a category from the configured priors."""
        return weighted_choice(self._rng, self._categories, self._weights)

    def entries_for(
        self, domains: Iterable[DomainName], listed_at: int = 0
    ) -> List[BlocklistEntry]:
        """Feed entries for a malicious population."""
        return [
            BlocklistEntry(
                domain.registered_domain(),
                self.assign_category(domain),
                listed_at,
                source="synthetic-feed",
            )
            for domain in domains
        ]

    def populate(
        self,
        store: BlocklistStore,
        domains: Iterable[DomainName],
        listed_at: int = 0,
    ) -> int:
        """Generate entries and add them to ``store``; returns count."""
        entries = self.entries_for(domains, listed_at)
        store.add_all(entries)
        return len(entries)
