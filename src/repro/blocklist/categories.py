"""Threat categories of the blocklist (Figure 8's four slices)."""

from __future__ import annotations

import enum
from typing import Tuple


class ThreatCategory(enum.Enum):
    """Why a domain was blocklisted."""

    MALWARE = "malware"
    GRAYWARE = "grayware"
    PHISHING = "phishing"
    COMMAND_AND_CONTROL = "c2"

    @property
    def display_name(self) -> str:
        return _DISPLAY[self]


_DISPLAY = {
    ThreatCategory.MALWARE: "Malware",
    ThreatCategory.GRAYWARE: "Grayware",
    ThreatCategory.PHISHING: "Phishing",
    ThreatCategory.COMMAND_AND_CONTROL: "C&C",
}

#: Figure 8's category shares among blocklisted NXDomains:
#: malware 79%, grayware 9%, phishing 8%, C&C 4%.
PAPER_CATEGORY_SHARES: Tuple[Tuple[ThreatCategory, float], ...] = (
    (ThreatCategory.MALWARE, 0.79),
    (ThreatCategory.GRAYWARE, 0.09),
    (ThreatCategory.PHISHING, 0.08),
    (ThreatCategory.COMMAND_AND_CONTROL, 0.04),
)
