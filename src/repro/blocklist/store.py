"""The blocklist store and its rate-limited query API.

The paper could not run its full 91 M expired NXDomains against the
commercial blocklist "due to the rate limit of querying the blocklist
database" and sampled 20 M instead.  :class:`BlocklistStore` models
that operational constraint with a token-bucket limiter on
:meth:`query`; internal bulk population and the unthrottled
:meth:`lookup` remain available to the simulation itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.blocklist.categories import ThreatCategory
from repro.dns.name import DomainName
from repro.errors import RateLimitExceeded

# The limiter grew up and moved to the resilience layer (the serving
# tier shares it); ``RateLimit`` stays importable from here.
from repro.resilience.ratelimit import RateLimit, TokenBucket


@dataclass(frozen=True)
class BlocklistEntry:
    """One blocklisted domain with provenance."""

    domain: DomainName
    category: ThreatCategory
    listed_at: int
    source: str = "feed"


class BlocklistStore:
    """Categorized domain blocklist with a throttled external API."""

    def __init__(self, rate_limit: Optional[RateLimit] = None) -> None:
        self._bucket = TokenBucket(
            rate_limit if rate_limit is not None else RateLimit()
        )
        self._entries: Dict[DomainName, BlocklistEntry] = {}
        self.queries_served = 0
        self.queries_rejected = 0

    @property
    def rate_limit(self) -> RateLimit:
        return self._bucket.limit

    @rate_limit.setter
    def rate_limit(self, limit: RateLimit) -> None:
        # Swapping the limit starts a fresh window (how the study
        # harness lifts the quota between analysis phases).
        self._bucket = TokenBucket(limit)

    # -- population (registry side, unthrottled) ---------------------------

    def add(
        self,
        domain: DomainName,
        category: ThreatCategory,
        listed_at: int = 0,
        source: str = "feed",
    ) -> BlocklistEntry:
        """List a domain; re-listing keeps the earliest entry."""
        key = domain.registered_domain()
        existing = self._entries.get(key)
        if existing is not None:
            return existing
        entry = BlocklistEntry(key, category, listed_at, source)
        self._entries[key] = entry
        return entry

    def add_all(self, entries: Iterable[BlocklistEntry]) -> None:
        for entry in entries:
            self.add(entry.domain, entry.category, entry.listed_at, entry.source)

    def remove(self, domain: DomainName) -> bool:
        return self._entries.pop(domain.registered_domain(), None) is not None

    # -- internal lookup (simulation side, unthrottled) ----------------------

    def lookup(self, domain: DomainName) -> Optional[BlocklistEntry]:
        return self._entries.get(domain.registered_domain())

    def __contains__(self, domain: DomainName) -> bool:
        return domain.registered_domain() in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def category_histogram(self) -> Dict[ThreatCategory, int]:
        counts: Dict[ThreatCategory, int] = {c: 0 for c in ThreatCategory}
        for entry in self._entries.values():
            counts[entry.category] += 1
        return counts

    # -- external API (throttled, what the study calls) -------------------------

    def query(self, domain: DomainName, now: int) -> Optional[BlocklistEntry]:
        """Rate-limited lookup; raises :class:`RateLimitExceeded`.

        ``now`` is simulation time; the token window slides with it.
        """
        if not self._bucket.try_acquire(now):
            self.queries_rejected += 1
            raise RateLimitExceeded(
                f"blocklist API limit of {self.rate_limit.capacity} queries "
                f"per {self.rate_limit.window_seconds}s exhausted",
                retry_after=self._bucket.retry_after(now),
            )
        self.queries_served += 1
        return self.lookup(domain)

    def query_many(
        self, domains: Iterable[DomainName], now: int
    ) -> List[BlocklistEntry]:
        """Throttled bulk query; hits only.  Raises mid-way when the
        budget runs out, exactly like a real API would."""
        hits = []
        for domain in domains:
            entry = self.query(domain, now)
            if entry is not None:
                hits.append(entry)
        return hits

    def remaining_budget(self, now: int) -> int:
        return self._bucket.remaining(now)
