"""Command-line interface.

``repro-nxd`` (or ``python -m repro``) exposes the study and the
individual detectors:

- ``repro-nxd report`` — run everything, print every table and figure;
- ``repro-nxd scale`` / ``origin`` / ``security`` — one section;
- ``repro-nxd selection`` — the §3.3 candidate list;
- ``repro-nxd sinkhole`` — classify the trace's NXDomain stream at the
  DNS level (the §7 future-work analysis server);
- ``repro-nxd dga <domain> ...`` — classify names with the detector;
- ``repro-nxd squat <domain> ...`` — classify names against the
  popular-target list;
- ``repro-nxd faults`` — sweep fault-injection rates and report how
  far the §4 shape checks degrade;
- ``repro-nxd spill`` — inspect, compact, and reclaim a crash-safe
  spill store directory (``info`` opens it read-only);
- ``repro-nxd serve`` — replay a scripted query batch through the
  overload-hardened serving tier, or gate the overload sweep;
- ``repro-nxd lint`` — run the determinism & layering linter
  (:mod:`repro.analysis`) over the source tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import reports, security as security_mod
from repro.core.study import NxdomainStudy, StudyConfig
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-nxd",
        description="Reproduction of 'Dial N for NXDomain' (IMC 2023)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_study_args(p):
        p.add_argument("--seed", type=int, default=0, help="top-level RNG seed")
        p.add_argument(
            "--domains", type=int, default=6_000, help="trace population size"
        )
        p.add_argument(
            "--honeypot-scale",
            type=float,
            default=0.005,
            help="fraction of the paper's 5.93M honeypot requests to generate",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for trace generation (output is "
            "fingerprint-identical at any worker count)",
        )
        p.add_argument(
            "--aggregate-jobs",
            type=int,
            default=1,
            help="worker count for the parallel aggregate builders and "
            "sharded analysis loops (results are bit-identical at any "
            "worker count)",
        )
        p.add_argument(
            "--spill-dir",
            default=None,
            help="back the NX store with the crash-safe on-disk spill "
            "store under this directory (byte-identical analyses; "
            "reopened stores are fingerprint-verified)",
        )

    for name, help_text in (
        ("report", "run the full study and print every table and figure"),
        ("scale", "§4 scale analyses (Figures 3-6)"),
        ("origin", "§5 origin analyses (WHOIS join, DGA, Figures 7-8)"),
        ("security", "§6 honeypot experiment (Table 1, Figures 10-15)"),
        ("selection", "§3.3 domain selection"),
        ("sinkhole", "classify the NXDomain stream at the DNS level (§7)"),
    ):
        p = sub.add_parser(name, help=help_text)
        add_study_args(p)
    sub_validate = sub.add_parser(
        "validate", help="shape-check robustness across a seed sweep"
    )
    sub_validate.add_argument("--seeds", type=int, default=5, help="seed count")
    sub_validate.add_argument("--domains", type=int, default=6_000)
    sub_validate.add_argument(
        "--skip-origin", action="store_true", help="only run the §4 checks"
    )

    sub_faults = sub.add_parser(
        "faults",
        help="fault-injection sweep: §4 shape checks under degraded collection",
    )
    sub_faults.add_argument("--seeds", type=int, default=3, help="seed count")
    sub_faults.add_argument("--domains", type=int, default=4_000)
    sub_faults.add_argument(
        "--rates",
        default="0,0.01,0.05,0.1",
        help="comma-separated fault rates to sweep",
    )
    sub_faults.add_argument(
        "--gate",
        type=float,
        default=0.05,
        help="highest fault rate that must keep every shape check passing",
    )
    sub_faults.add_argument(
        "--include-origin", action="store_true", help="also run the §5 checks"
    )
    sub_faults.add_argument(
        "--spill-dir",
        default=None,
        help="run each degraded replay against a crash-safe spill store "
        "under this directory (one subdirectory per rate and seed)",
    )
    sub_faults.add_argument(
        "--list-injectors",
        action="store_true",
        help="list the available fault injectors (stream and storage) "
        "and exit",
    )

    sub_spill = sub.add_parser(
        "spill",
        help="inspect, compact, and reclaim a crash-safe spill store",
    )
    spill_sub = sub_spill.add_subparsers(dest="spill_command", required=True)
    spill_info = spill_sub.add_parser(
        "info",
        help="open a spill directory read-only and print its recovery "
        "report (creates and mutates nothing)",
    )
    spill_info.add_argument("--dir", required=True, help="spill directory")
    spill_info.add_argument(
        "--paranoid",
        action="store_true",
        help="ignore the verified-at cache and CRC-stream every segment",
    )
    spill_compact = spill_sub.add_parser(
        "compact",
        help="rewrite the committed segments into one superseding "
        "generation (crash-safe at every write boundary)",
    )
    spill_compact.add_argument("--dir", required=True, help="spill directory")
    spill_compact.add_argument(
        "--min-segments",
        type=int,
        default=2,
        help="skip compaction below this many committed segments",
    )
    spill_purge = spill_sub.add_parser(
        "purge-quarantine",
        help="delete quarantined debris the store has already "
        "recovered from",
    )
    spill_purge.add_argument("--dir", required=True, help="spill directory")
    spill_purge.add_argument(
        "--kinds",
        default=None,
        help="comma-separated quarantine kinds to purge "
        "(default: every kind)",
    )
    spill_purge.add_argument(
        "--before-generation",
        type=int,
        default=None,
        help="only purge entries quarantined before this generation",
    )

    sub_trace = sub.add_parser(
        "trace", help="generate, save, and analyze trace datasets"
    )
    trace_sub = sub_trace.add_subparsers(dest="trace_command", required=True)
    trace_generate = trace_sub.add_parser(
        "generate", help="generate a trace and save it to a directory"
    )
    trace_generate.add_argument("out", help="output directory")
    trace_generate.add_argument("--seed", type=int, default=0)
    trace_generate.add_argument("--domains", type=int, default=6_000)
    trace_generate.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for query emission (deterministic)",
    )
    trace_analyze = trace_sub.add_parser(
        "analyze", help="run the §4 analyses over a saved trace"
    )
    trace_analyze.add_argument("path", help="directory written by 'trace generate'")
    trace_analyze.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker count for the parallel aggregate builders "
        "(bit-identical results at any worker count)",
    )

    sub_dga = sub.add_parser("dga", help="classify domains with the DGA detector")
    sub_dga.add_argument("names", nargs="+", help="domain names to classify")
    sub_dga.add_argument("--seed", type=int, default=0)
    sub_dga.add_argument("--threshold", type=float, default=0.5)
    sub_squat = sub.add_parser(
        "squat", help="classify domains against the popular-target list"
    )
    sub_squat.add_argument("names", nargs="+", help="domain names to classify")

    sub_serve = sub.add_parser(
        "serve",
        help="replay a scripted query batch through the overload-hardened "
        "serving tier, or run the overload sweep",
    )
    sub_serve.add_argument("--seed", type=int, default=0, help="store/workload seed")
    sub_serve.add_argument(
        "--domains", type=int, default=500, help="synthetic store size"
    )
    sub_serve.add_argument(
        "--script",
        default=None,
        help="JSONL query script: one request per line with a 'kind' "
        "(top-domains, daily-series, timeline, activity-window), its "
        "query fields, and optional tenant/priority/budget/at (arrival "
        "offset seconds)",
    )
    sub_serve.add_argument(
        "--sweep",
        action="store_true",
        help="run the overload sweep (clean/slow/stuck/storm) and gate "
        "the shed/degraded/served curves against the clean baseline",
    )
    sub_serve.add_argument(
        "--queries", type=int, default=240, help="sweep workload size"
    )

    from repro.analysis.main import add_lint_arguments

    sub_lint = sub.add_parser(
        "lint",
        help="run the repro.analysis determinism & layering linter",
    )
    add_lint_arguments(sub_lint)
    return parser


def _study_from(args: argparse.Namespace) -> NxdomainStudy:
    config = StudyConfig(
        trace_domains=args.domains,
        squat_count=max(args.domains // 25, 50),
        honeypot_scale=args.honeypot_scale,
        trace_jobs=args.jobs,
        aggregate_jobs=args.aggregate_jobs,
        spill_dir=args.spill_dir,
    )
    return NxdomainStudy(seed=args.seed, config=config)


def cmd_report(args: argparse.Namespace) -> int:
    print(_study_from(args).full_report())
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    analysis = _study_from(args).run_scale_analysis()
    print(reports.render_figure3(analysis.monthly_series))
    print()
    print(reports.render_figure4(analysis.tld_distribution))
    print()
    print(reports.render_figure5(analysis.lifespan))
    print()
    print(reports.render_figure6(analysis.expiry_timeline))
    return 0


def cmd_origin(args: argparse.Namespace) -> int:
    analysis = _study_from(args).run_origin_analysis()
    print(reports.render_whois_join(analysis.whois_join))
    print()
    print(reports.render_dga_census(analysis.dga_census))
    print()
    print(reports.render_figure7(analysis.squatting_census))
    print()
    print(reports.render_figure8(analysis.blocklist_census))
    return 0


def cmd_security(args: argparse.Namespace) -> int:
    study = _study_from(args)
    result = study.run_security_analysis()
    print(reports.render_table1(result))
    print()
    print(reports.render_figure10(security_mod.port_distribution(result)))
    print()
    inapp = security_mod.inapp_browser_distribution(result)
    print(reports.render_figure13(inapp, security_mod.inapp_shape_checks(inapp)))
    print()
    print(
        reports.render_figure14(security_mod.botnet_country_distribution(result))
    )
    print()
    print(
        reports.render_figure15(security_mod.botnet_hostname_distribution(result))
    )
    return 0


def cmd_selection(args: argparse.Namespace) -> int:
    study = _study_from(args)
    chosen = study.run_selection()
    rows = [
        (
            str(candidate.record.domain),
            candidate.record.kind.value,
            f"{candidate.monthly_queries:,.0f}",
            candidate.nx_days,
            "malicious" if candidate.is_malicious else "benign",
        )
        for candidate in chosen
    ]
    print("§3.3 — selected study domains (high traffic, ≥180 days NX):")
    print(
        reports.render_table(
            ["domain", "origin", "queries/mo", "nx-days", "class"], rows
        )
    )
    return 0


def cmd_sinkhole(args: argparse.Namespace) -> int:
    from repro.core.sinkhole import NxdomainSinkhole

    study = _study_from(args)
    trace = study.trace
    sinkhole = NxdomainSinkhole(
        study.dga_detector, blocklist=trace.blocklist
    )
    # One columnar snapshot instead of a per-record profile() lookup:
    # the store interns domains in first-append order, so walking the
    # snapshot visits exactly the population records that have rows,
    # in population order — the same observe() sequence as the old
    # row-at-a-time loop.
    domains, first_seen, _, totals = trace.nx_db.aggregate_snapshot()
    for domain, first, queries in zip(
        domains, first_seen.tolist(), totals.tolist()
    ):
        sinkhole.observe(domain, first, queries)
    report = sinkhole.report(top_n=15)
    print("§7 — DNS-level sinkhole classification of the NXDomain stream")
    print(
        reports.render_table(
            ["verdict", "domains", "queries"],
            [
                (v.value, report.domains_by_verdict[v], f"{report.queries_by_verdict[v]:,}")
                for v in report.domains_by_verdict
            ],
        )
    )
    print(f"\nsuspicious fraction: {report.suspicious_fraction():.1%}")
    print("\ntop suspicious NXDomains by query volume:")
    print(
        reports.render_table(
            ["domain", "verdict", "detail", "queries"],
            [
                (str(r.domain), r.verdict.value, r.detail, f"{r.queries:,}")
                for r in report.top_suspicious
            ],
        )
    )
    return 0


def cmd_dga(args: argparse.Namespace) -> int:
    from repro.dga.detector import DgaDetector

    detector = DgaDetector.train_default(
        seed=args.seed, samples_per_family=150, threshold=args.threshold
    )
    rows = []
    for name in args.names:
        probability = detector.probability(name)
        rows.append(
            (name, f"{probability:.3f}", "DGA" if probability >= args.threshold else "benign")
        )
    print(reports.render_table(["domain", "p(dga)", "verdict"], rows))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.main import run_lint

    return run_lint(args)


def cmd_squat(args: argparse.Namespace) -> int:
    from repro.dns.name import DomainName
    from repro.squatting.detector import SquattingDetector

    detector = SquattingDetector()
    rows = []
    for name in args.names:
        match = detector.classify(DomainName(name))
        if match is None:
            rows.append((name, "clean", ""))
        else:
            rows.append((name, match.squat_type.value, str(match.target)))
    print(reports.render_table(["domain", "verdict", "target"], rows))
    return 0


def _render_served_value(value) -> str:
    import numpy as np

    if value is None:
        return "-"
    if isinstance(value, np.ndarray):
        return f"series[{len(value)}] total={int(value.sum())}"
    if isinstance(value, list):
        head = ", ".join(f"{name}={total}" for name, total in value[:3])
        return f"top[{len(value)}] {head}"
    if isinstance(value, dict):
        return (
            f"active={value.get('active_days')}/"
            f"{value.get('lifespan_days')}d total={value.get('total_queries')}"
        )
    return str(value)


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.clock import SECONDS_PER_DAY, STUDY_START, SimClock, date_to_epoch
    from repro.serving import (
        QueryRequest,
        QueryServer,
        overload_sweep,
        query_from_payload,
        synthetic_store,
    )

    if args.sweep:
        report = overload_sweep(
            seed=args.seed, domains=args.domains, queries=args.queries
        )
        for row in report.rows():
            print(row)
        problems = report.regressions()
        if problems:
            print()
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 1
        print()
        print(f"overload sweep passed ({len(report.points)} points)")
        return 0
    if args.script is None:
        print("serve: need --script FILE or --sweep", file=sys.stderr)
        return 2
    with open(args.script, "r", encoding="utf-8") as handle:
        payloads = [json.loads(line) for line in handle if line.strip()]
    db = synthetic_store(args.seed, domains=args.domains)
    start = date_to_epoch(STUDY_START) + 400 * SECONDS_PER_DAY
    requests = []
    for payload in payloads:
        tenant = payload.pop("tenant", "default")
        priority = payload.pop("priority", 1)
        budget = payload.pop("budget", None)
        at = payload.pop("at", None)
        requests.append(
            QueryRequest(
                query=query_from_payload(payload),
                tenant=tenant,
                priority=priority,
                budget=budget,
                at=start + int(at) if at is not None else None,
            )
        )
    server = QueryServer(db, SimClock(start))
    records = server.serve(requests)
    rows = [
        (
            str(record.seq),
            record.request.query.kind,
            record.request.tenant,
            record.disposition.value,
            f"{record.latency}s",
            _render_served_value(record.value) if record.answered else record.detail,
        )
        for record in records
    ]
    print(
        reports.render_table(
            ["#", "kind", "tenant", "outcome", "latency", "result"], rows
        )
    )
    print(
        f"answered {sum(1 for r in records if r.answered)}/{len(records)}, "
        f"p99 latency {server.stats.p99_latency()}s, "
        f"unhandled {server.stats.unhandled}"
    )
    return 0 if server.stats.unhandled == 0 else 1


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.validation import validate_shapes

    config = StudyConfig(
        trace_domains=args.domains, squat_count=max(args.domains // 25, 50)
    )
    report = validate_shapes(
        list(range(args.seeds)), config, include_origin=not args.skip_origin
    )
    rows = [
        (name, f"{rate:.0%}", ",".join(map(str, failing)) or "-")
        for name, rate, failing in report.worst()
    ]
    print(
        f"shape robustness over {len(report.seeds)} seeds at "
        f"{args.domains:,} domains (overall "
        f"{report.overall_pass_rate():.1%}):"
    )
    print(reports.render_table(["check", "pass rate", "failing seeds"], rows))
    return 0 if report.robust() else 1


def _list_injectors() -> int:
    """Print every injector the fault layer ships, by category."""
    import repro.faults.injectors as injectors_mod

    stream: List[tuple] = []
    storage: List[tuple] = []
    for attr in sorted(vars(injectors_mod)):
        obj = getattr(injectors_mod, attr)
        if (
            not isinstance(obj, type)
            or not issubclass(obj, injectors_mod.Injector)
            or obj is injectors_mod.Injector
        ):
            continue
        doc = (obj.__doc__ or "").strip().splitlines()[0]
        row = (obj.name, attr, doc)
        if issubclass(obj, injectors_mod.StorageFaultInjector):
            storage.append(row)
        else:
            stream.append(row)
    print("stream injectors (rate-driven, FaultPlan/FaultSchedule):")
    print(reports.render_table(["name", "class", "what it injects"], stream))
    print()
    print(
        "storage injectors (positional, crash-at-a-write-boundary; "
        "drive SpillStore durability — see docs/RESILIENCE.md):"
    )
    print(reports.render_table(["name", "class", "what it injects"], storage))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.core.validation import fault_sweep

    if args.list_injectors:
        return _list_injectors()
    rates = [float(token) for token in args.rates.split(",") if token.strip()]
    config = StudyConfig(
        trace_domains=args.domains, squat_count=max(args.domains // 25, 50)
    )
    report = fault_sweep(
        list(range(args.seeds)),
        config,
        rates=rates,
        include_origin=args.include_origin,
        spill_dir=args.spill_dir,
    )
    print(
        f"shape-check degradation over {len(report.seeds)} seeds at "
        f"{args.domains:,} domains:"
    )
    print(
        reports.render_table(
            [
                "fault rate",
                "delivered",
                "check pass rate",
                "store fail/replayed",
                "dups suppressed",
            ],
            report.rows(),
        )
    )
    for point in report.points:
        failing = [
            (name, rate, seeds)
            for name, rate, seeds in point.report.worst()
            if rate < 1.0
        ]
        for name, rate, seeds in failing:
            print(
                f"  {point.rate:.1%}: {name} passed {rate:.0%} "
                f"(failing seeds: {','.join(map(str, seeds))})"
            )
    regressions = report.regressions(args.gate)
    for rate, name, seeds in regressions:
        print(
            f"  REGRESSION at {rate:.1%}: {name} newly fails "
            f"(seeds: {','.join(map(str, seeds))})"
        )
    passed = not regressions
    print(
        f"\nfault rates up to {args.gate:.1%} "
        f"{'add no shape-check failures' if passed else 'BREAK shape checks'} "
        f"beyond the clean baseline"
    )
    return 0 if passed else 1


def cmd_spill(args: argparse.Namespace) -> int:
    from repro.passivedns.database import PassiveDnsDatabase
    from repro.passivedns.spill import SpillStore

    if args.spill_command == "info":
        db = PassiveDnsDatabase(
            spill_dir=args.dir,
            spill_read_only=True,
            spill_paranoid=args.paranoid,
        )
        store = db.spill
        assert store is not None
        report = store.last_recovery
        assert report is not None
        print(report.summary())
        print(
            f"segments: {len(store.segments())}  "
            f"rows: {db.row_count():,}  domains: {db.unique_domains():,}"
        )
        print(
            f"verified-at cache: {report.verified_cache}  "
            f"(hits {report.cache_hits}, "
            f"streamed {report.segments_crc_streamed})"
        )
        print(f"store digest: {db.digest()}")
        for entry in report.quarantined:
            print(f"  would quarantine {entry.path}: {entry.kind}")
        return 0 if report.clean() else 1
    if args.spill_command == "compact":
        store = SpillStore.open(args.dir)
        before = len(store.segments())
        generation = store.compact(min_segments=args.min_segments)
        if generation is None:
            print(f"nothing to compact ({before} segment(s) committed)")
            return 0
        print(
            f"compacted {before} segment(s) into one; "
            f"now serving generation {generation}"
        )
        return 0
    store = SpillStore.open(args.dir)
    kinds = (
        {kind.strip() for kind in args.kinds.split(",") if kind.strip()}
        if args.kinds
        else None
    )
    removed, freed = store.purge_quarantine(
        kinds=kinds, before_generation=args.before_generation
    )
    print(f"purged {removed} quarantined file(s), {freed:,} bytes freed")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.scale import monthly_response_series, tld_distribution
    from repro.workloads.persistence import load_trace, save_trace
    from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

    if args.trace_command == "generate":
        config = TraceConfig(
            total_domains=args.domains, squat_count=max(args.domains // 25, 50)
        )
        trace = NxdomainTraceGenerator(seed=args.seed, config=config).generate(
            jobs=args.jobs
        )
        root = save_trace(trace, args.out)
        print(
            f"saved trace: {trace.nx_db.unique_domains():,} domains, "
            f"{trace.nx_db.total_responses():,} responses -> {root}"
        )
        return 0
    trace = load_trace(args.path)
    trace.nx_db.aggregate_jobs = args.jobs
    print(
        f"loaded trace: {trace.nx_db.unique_domains():,} domains, "
        f"{trace.nx_db.total_responses():,} responses"
    )
    print()
    print(reports.render_figure3(monthly_response_series(trace.nx_db)))
    print()
    print(reports.render_figure4(tld_distribution(trace.nx_db)))
    return 0


_COMMANDS = {
    "report": cmd_report,
    "validate": cmd_validate,
    "faults": cmd_faults,
    "spill": cmd_spill,
    "trace": cmd_trace,
    "scale": cmd_scale,
    "origin": cmd_origin,
    "security": cmd_security,
    "selection": cmd_selection,
    "sinkhole": cmd_sinkhole,
    "dga": cmd_dga,
    "squat": cmd_squat,
    "serve": cmd_serve,
    "lint": cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
