"""The passive DNS database: a chunked columnar NXDomain store.

The analytical heart of the scale study.  Rows are
``(domain_id, timestamp, count)`` triples held in consolidated numpy
chunks (the BigQuery-mirror stand-in); a domain dictionary interns
names and keeps per-domain aggregates (first/last seen, total queries,
interned TLD id) in parallel numpy columns.  All §4 aggregations —
monthly volume, TLD histograms, lifespan decay, the per-domain
timelines of Figure 6 — are numpy reductions over these columns.

Performance layout (see ``docs/PERFORMANCE.md``):

- **ingest** appends into a numpy tail buffer that is sealed into an
  immutable chunk at ``_CHUNK`` rows, so single-row adds stay O(1)
  amortized and :meth:`add_batch` lands whole arrays without a
  per-row Python loop;
- **aggregates** (monthly series, TLD histogram, lifespan decay, the
  fingerprint) are cached against a generation counter that every
  mutation bumps, so repeated analysis passes over a quiescent store
  cost one computation;
- **per-domain queries** go through a CSR-style domain→rows index, so
  :meth:`daily_series_for` touches one domain's rows instead of
  scanning the full columns.

Durability layout (see ``docs/RESILIENCE.md``): constructing the store
with ``spill_dir=`` opens a :class:`repro.passivedns.spill.SpillStore`
under that directory.  Sealed chunks are spilled to checksummed,
memory-mapped ``.npy`` segments instead of staying resident, the
aggregate builders stream over the part list instead of forcing one
in-memory concatenation, and :meth:`spill_commit` makes the current
contents a durable manifest generation.  Every query — the CSR index,
the aggregates, the order-insensitive :meth:`fingerprint` — answers
byte-identically to the in-memory path.
"""

from __future__ import annotations

import hashlib
import io as _stdio
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.clock import SECONDS_PER_DAY, month_key
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.parallel import map_shards, shard_bounds
from repro.passivedns.record import DnsObservation
from repro.passivedns.spill import DIGEST_MASK, SpillStore
from repro.errors import ConfigError, CorruptArchiveError

#: Sentinels for a freshly interned domain before its first row lands:
#: min/max updates against them always lose to a real timestamp.
_FIRST_SEEN_SENTINEL = np.int64(2**62)
_LAST_SEEN_SENTINEL = np.int64(-(2**62))


# -- aggregate map tasks ------------------------------------------------------
#
# The chunk-parallel aggregate builders cut the row parts into
# contiguous shards and map one of the pure functions below over each
# shard (on a process pool when ``aggregate_jobs > 1`` — the digest
# and fingerprint maps are per-row :mod:`hashlib` work that never
# releases the GIL).  Each function reads only its task tuple and
# touches no shared state, so the associative reduces in the builders
# are bit-identical to the serial pass at any worker count and any
# shard layout.


def _row_lines(row_names: np.ndarray, times: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Canonical ``name\\x00time\\x00count`` line per row (vectorized)."""
    lines = row_names
    for column in (times, counts):
        lines = np.char.add(
            np.char.add(lines, "\x00"),
            np.ascontiguousarray(column, dtype=np.int64).astype(np.str_),
        )
    return lines


def _digest_map(task: Tuple[np.ndarray, np.ndarray, np.ndarray]) -> int:
    """Mergeable multiset digest of one row shard (sum mod 2**128)."""
    row_names, times, counts = task
    total = 0
    for line in _row_lines(row_names, times, counts).tolist():
        piece = hashlib.blake2b(line.encode("utf-8"), digest_size=16).digest()
        total += int.from_bytes(piece, "big")
    return total & DIGEST_MASK


def _fingerprint_map(
    task: Tuple[np.ndarray, np.ndarray, np.ndarray]
) -> bytes:
    """UTF-8 bytes of one already-sorted fingerprint slice."""
    row_names, times, counts = task
    return "\n".join(_row_lines(row_names, times, counts).tolist()).encode(
        "utf-8"
    )


def _monthly_map(
    task: Tuple[np.ndarray, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-shard (distinct days, query sums per day)."""
    times, counts = task
    days = times // SECONDS_PER_DAY
    unique_days, inverse = np.unique(days, return_inverse=True)
    sums = np.zeros(len(unique_days), dtype=np.int64)
    np.add.at(sums, inverse, counts)
    return unique_days, sums


def _lifespan_map(
    task: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-shard (query sums per offset, unique (offset, domain) keys)."""
    ids, times, counts, first_subset, max_days, n_domains = task
    offsets = (times - first_subset) // SECONDS_PER_DAY
    in_window = (offsets >= 0) & (offsets < max_days)
    queries = np.zeros(max_days, dtype=np.int64)
    np.add.at(queries, offsets[in_window], counts[in_window])
    pair_keys = offsets[in_window] * np.int64(n_domains) + ids[in_window]
    return queries, np.unique(pair_keys)


def _tld_map(
    task: Tuple[np.ndarray, np.ndarray, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-shard (domains per TLD, queries per TLD) over domain columns."""
    tld_ids, totals, n_tlds = task
    domains_per = np.bincount(tld_ids, minlength=n_tlds).astype(np.int64)
    queries_per = np.zeros(n_tlds, dtype=np.int64)
    np.add.at(queries_per, tld_ids, totals)
    return domains_per, queries_per


def _reshard_rows(
    parts: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]], jobs: int
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Re-cut row parts into ~``jobs`` contiguous row-range shards.

    Chunk/segment boundaries follow ingest batching, so a store can
    hold one huge consolidated chunk or dozens of tiny ones; the
    worker pool wants neither.  This re-cuts the concatenated row
    space with :func:`shard_bounds` — every aggregate reduce is
    associative over rows, so the cut is invisible in the result.
    """
    total = sum(len(part[0]) for part in parts)
    if total == 0:
        return []
    starts = np.zeros(len(parts) + 1, dtype=np.int64)
    np.cumsum([len(part[0]) for part in parts], out=starts[1:])
    shards: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for lo, hi in shard_bounds(total, jobs):
        if lo == hi:
            continue
        pieces = []
        for index, part in enumerate(parts):
            part_lo, part_hi = int(starts[index]), int(starts[index + 1])
            cut_lo, cut_hi = max(lo, part_lo), min(hi, part_hi)
            if cut_lo >= cut_hi:
                continue
            pieces.append(
                tuple(
                    column[cut_lo - part_lo : cut_hi - part_lo]
                    for column in part
                )
            )
        if len(pieces) == 1:
            shards.append(pieces[0])
        else:
            shards.append(
                tuple(
                    np.concatenate([piece[i] for piece in pieces])
                    for i in range(3)
                )
            )
    return shards


class _IntColumn:
    """Amortized-append ``int64`` column (capacity-doubling array).

    The growable building block of the store: appends are O(1)
    amortized, :meth:`extend` lands whole arrays with one copy, and
    :meth:`view` exposes the live prefix zero-copy.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, capacity: int = 1024) -> None:
        self._data = np.empty(max(capacity, 1), dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= len(self._data):
            return
        capacity = len(self._data)
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=np.int64)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def append(self, value: int) -> None:
        """Append one value."""
        self._reserve(1)
        self._data[self._size] = value
        self._size += 1

    def extend(self, values: np.ndarray) -> None:
        """Append a whole array of values."""
        self._reserve(len(values))
        self._data[self._size : self._size + len(values)] = values
        self._size += len(values)

    def view(self) -> np.ndarray:
        """Zero-copy view of the live prefix (do not mutate)."""
        return self._data[: self._size]

    def __getitem__(self, index: int) -> int:
        return int(self._data[index])

    def __setitem__(self, index: int, value: int) -> None:
        self._data[index] = value

    def clear(self) -> None:
        """Reset to empty without releasing capacity."""
        self._size = 0


@dataclass
class DomainProfile:
    """Per-domain aggregate view."""

    domain: DomainName
    first_seen: int
    last_seen: int
    total_queries: int

    @property
    def tld(self) -> str:
        return self.domain.tld

    def lifespan_days(self) -> int:
        return (self.last_seen - self.first_seen) // SECONDS_PER_DAY

    def monthly_rate(self) -> float:
        """Average queries per 30-day month over the observed span.

        The observed span is floored at one day (a single-day burst is
        one day of activity, not zero), then converted to 30-day
        months *without* flooring the month count — a domain active
        for five days at N queries/day really does average 6·N·30/30
        queries per month, not N·5.  (The old double clamp normalized
        every sub-30-day domain to exactly one month, hiding the
        short-lived mass's true rate; §3.3 selection is unaffected
        because it also requires ≥180 days of NX activity, where the
        clamp never bound.)
        """
        months = max(self.lifespan_days(), 1) / 30.0
        return self.total_queries / months


class PassiveDnsDatabase:
    """Columnar store of NXDomain observations with §4's query API."""

    #: Tail-buffer rows before consolidation into an immutable chunk.
    _CHUNK = 1 << 16
    #: Bound on the duplicate-suppression window.  Redeliveries in real
    #: feeds are near-adjacent (a retried publish, an at-least-once
    #: redelivery), so a sliding window of recent observation keys is
    #: both sufficient and checkpointable.
    DEDUP_WINDOW = 4096

    def __init__(
        self,
        deduplicate: bool = False,
        spill_dir: Optional[Any] = None,
        spill_faults: Optional[Any] = None,
        spill_paranoid: bool = False,
        spill_read_only: bool = False,
        spill_compact_threshold: int = 0,
        aggregate_jobs: int = 1,
    ) -> None:
        if spill_compact_threshold < 0 or spill_compact_threshold == 1:
            raise ConfigError(
                "spill_compact_threshold must be 0 (off) or at least 2"
            )
        if aggregate_jobs < 1:
            raise ConfigError("aggregate_jobs must be at least 1")
        #: Worker count for the chunk-parallel aggregate builders
        #: (monthly series, TLD histogram, lifespan decay, digest,
        #: fingerprint).  ``1`` keeps every reduce inline; any value
        #: produces bit-identical aggregates (see ``_reshard_rows``).
        self.aggregate_jobs = aggregate_jobs
        self._id_of: Dict[DomainName, int] = {}
        self._domains: List[DomainName] = []
        # Per-domain aggregate columns (parallel to ``_domains``).
        self._first_seen = _IntColumn()
        self._last_seen = _IntColumn()
        self._totals = _IntColumn()
        #: Interned per-domain TLD ids (index into ``_tlds``).
        self._tld_ids = _IntColumn()
        self._tld_of: Dict[str, int] = {}
        self._tlds: List[str] = []
        # Row storage: immutable consolidated chunks plus a numpy tail
        # buffer sealed at ``_CHUNK`` rows (no whole-store refreezes).
        self._chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        #: Spill segment name per chunk (None = in-memory chunk), kept
        #: parallel to ``_chunks`` so digests can be cached per segment.
        self._chunk_spill_names: List[Optional[str]] = []
        #: Guards every generation-keyed derived cache below.  Mutation
        #: (ingest, seal, commit, compact) is single-writer by contract,
        #: but the caches are populated lazily on *read* paths, which
        #: may race each other from reader threads on a quiescent
        #: store; the lock makes each cache publish atomic.  Builds
        #: stay outside the lock — only the store of the finished value
        #: is guarded.
        self._cache_lock = threading.Lock()
        #: Guards the row layout itself: the chunk list, the tail
        #: buffers, and the per-domain aggregate columns.  Writers hold
        #: it for their *in-memory* critical sections only — segment IO
        #: (spill writes, mmap) stays outside (REP304) — and readers
        #: that need a multi-step view of one committed generation wrap
        #: their reads in :meth:`read_transaction`.  Re-entrant so a
        #: reader inside a transaction can call any query method.
        #: Ordering: ``_rows_lock`` before ``_cache_lock``, never the
        #: reverse (REP302).
        self._rows_lock = threading.RLock()
        #: Per-segment mergeable row digests (recomputable from rows).
        self._segment_digest_cache: Dict[str, int] = {}
        self._tail_domain = _IntColumn(self._CHUNK)
        self._tail_time = _IntColumn(self._CHUNK)
        self._tail_count = _IntColumn(self._CHUNK)
        self._n_rows = 0
        #: Bumped on every mutation; keys every derived cache below.
        self._generation = 0
        self._columns_cache: Optional[
            Tuple[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]
        ] = None
        self._index_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
        self._agg_cache: Dict[Any, Tuple[int, Any]] = {}
        self.deduplicate = deduplicate
        self._recent_keys: "OrderedDict[tuple, None]" = OrderedDict()
        self.duplicates_suppressed = 0
        #: Durable segment store when opened with ``spill_dir=``.
        self._spill: Optional[SpillStore] = None
        #: Committed segments at/above this count trigger auto-
        #: compaction inside :meth:`spill_commit` (0 = never).
        self._spill_compact_threshold = spill_compact_threshold
        if spill_dir is not None:
            self._spill = SpillStore.open(
                spill_dir,
                faults=spill_faults,
                paranoid=spill_paranoid,
                read_only=spill_read_only,
            )
            self._restore_from_spill(paranoid=spill_paranoid)

    # -- ingestion --------------------------------------------------------

    def ingest(self, observation: DnsObservation) -> None:
        """Channel-subscriber entry point (NXDomains only).

        With ``deduplicate`` enabled, a redelivery of an observation
        whose key is still inside the sliding window is suppressed and
        counted — the idempotence that makes at-least-once channel
        delivery and dead-letter replay safe.
        """
        if self.admit(observation):
            self.add(
                observation.registered_domain,
                observation.timestamp,
                observation.count,
            )

    def admit(self, observation: DnsObservation) -> bool:
        """Admission control without the row append.

        Applies the NXDomain filter and, when ``deduplicate`` is on,
        advances the sliding dedup window exactly as :meth:`ingest`
        would — returning whether the observation should land.  Split
        out so a batch-buffering caller (the pipeline's fast lane) can
        run admission at arrival order while deferring the appends:
        the window state and ``duplicates_suppressed`` evolve
        identically either way.
        """
        if not observation.is_nxdomain:
            return False
        if self.deduplicate:
            key = observation.observation_key
            if key in self._recent_keys:
                # Suppression state, not a row column: no generation-
                # keyed cache reads the window or the counter.
                self.duplicates_suppressed += 1  # repro: noqa[REP204]
                return False
            self._recent_keys[key] = None  # repro: noqa[REP204]
            while len(self._recent_keys) > self.DEDUP_WINDOW:
                self._recent_keys.popitem(last=False)
        return True

    def add(self, domain: DomainName, timestamp: int, count: int = 1) -> None:
        """Record ``count`` NXDomain responses for ``domain`` at ``timestamp``."""
        if count < 1:
            raise ConfigError("count must be at least 1")
        with self._rows_lock:
            domain_id = self._intern(domain)
            if timestamp < self._first_seen[domain_id]:
                self._first_seen[domain_id] = timestamp
            if timestamp > self._last_seen[domain_id]:
                self._last_seen[domain_id] = timestamp
            self._totals[domain_id] += count
            self._tail_domain.append(domain_id)
            self._tail_time.append(timestamp)
            self._tail_count.append(count)
            self._n_rows += 1
            self._touch()
        self._maybe_seal()

    def add_rows(
        self,
        domain: DomainName,
        timestamps: Sequence[int],
        counts: Sequence[int],
    ) -> None:
        """Record a whole per-domain array of rows in one call.

        Equivalent to ``add(domain, t, c)`` for each pair, but interns
        the domain once and lands the rows and aggregate updates as
        numpy operations (the trace generator's emission path).
        """
        times = np.ascontiguousarray(timestamps, dtype=np.int64)
        if len(times) == 0:
            return
        domain_id = self._intern(domain)
        ids = np.full(len(times), domain_id, dtype=np.int64)
        self._append_batch(ids, times, counts, interned=True)

    def intern_many(self, domains: Iterable[DomainName]) -> np.ndarray:
        """Bulk-intern domains, returning their ids as an int64 array.

        New domains are assigned ids in input order with sentinel
        aggregates; the first :meth:`add_batch` referencing them sets
        real first/last-seen values.  Already-known domains keep their
        ids, so the result is safe to feed straight to
        :meth:`add_batch` (with ``np.repeat`` for per-domain row runs).
        """
        ids = [self._intern(domain) for domain in domains]
        return np.asarray(ids, dtype=np.int64)

    def add_batch(
        self,
        domain_ids: np.ndarray,
        timestamps: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """Record many rows at once from pre-interned domain ids.

        The batch counterpart of :meth:`add`: per-domain aggregates
        are updated with vectorized scatter reductions and the rows
        land in the chunked store without a per-row Python loop.  Ids
        must come from :meth:`intern_many` (or earlier adds); counts
        must all be ≥ 1.
        """
        self._append_batch(domain_ids, timestamps, counts, interned=False)

    def _append_batch(
        self,
        domain_ids: np.ndarray,
        timestamps: np.ndarray,
        counts: np.ndarray,
        interned: bool,
    ) -> None:
        ids = np.ascontiguousarray(domain_ids, dtype=np.int64)
        times = np.ascontiguousarray(timestamps, dtype=np.int64)
        cnts = np.ascontiguousarray(counts, dtype=np.int64)
        if not (len(ids) == len(times) == len(cnts)):
            raise ConfigError("batch columns must have equal length")
        if len(ids) == 0:
            return
        if cnts.min() < 1:
            raise ConfigError("count must be at least 1")
        if not interned:
            if ids.min() < 0 or ids.max() >= len(self._domains):
                raise ConfigError("batch references an unknown domain id")
        # Vectorized aggregate maintenance: scatter-min/max/sum into
        # the per-domain columns.  The whole in-memory landing is one
        # rows-lock critical section so a concurrent
        # :meth:`read_transaction` never sees the aggregates updated
        # but the rows missing (or vice versa).
        with self._rows_lock:
            first = self._first_seen.view()
            last = self._last_seen.view()
            totals = self._totals.view()
            np.minimum.at(first, ids, times)
            np.maximum.at(last, ids, times)
            np.add.at(totals, ids, cnts)
            self._tail_domain.extend(ids)
            self._tail_time.extend(times)
            self._tail_count.extend(cnts)
            self._n_rows += len(ids)
            self._touch()
        self._maybe_seal()

    def _intern(self, domain: DomainName) -> int:
        domain_id = self._id_of.get(domain)
        if domain_id is None:
            with self._rows_lock:
                domain_id = len(self._domains)
                # Interning alone changes no row aggregates; every caller
                # appends rows next and bumps via _touch().
                self._id_of[domain] = domain_id  # repro: noqa[REP204]
                self._domains.append(domain)
                self._first_seen.append(_FIRST_SEEN_SENTINEL)
                self._last_seen.append(_LAST_SEEN_SENTINEL)
                self._totals.append(0)
                tld = domain.tld
                tld_id = self._tld_of.get(tld)
                if tld_id is None:
                    tld_id = len(self._tlds)
                    self._tld_of[tld] = tld_id
                    self._tlds.append(tld)
                self._tld_ids.append(tld_id)
        return domain_id

    def _touch(self) -> None:
        self._generation += 1

    def _maybe_seal(self) -> None:
        # Outside the rows lock on purpose: sealing a spill-backed
        # tail writes a segment to disk (REP304 — no blocking IO under
        # a held lock).  Content is unchanged by sealing, so a reader
        # between the append and the seal sees the same rows.
        if len(self._tail_domain) >= self._CHUNK:
            self._seal_tail()

    @property
    def generation(self) -> int:
        """Monotone mutation counter; keys every derived cache."""
        return self._generation

    @contextmanager
    def read_transaction(self) -> Iterator[int]:
        """Hold the row layout still for a multi-step read.

        Yields the generation the reads observe.  Everything read
        inside the block — :meth:`aggregate_snapshot`,
        :meth:`daily_series_for`, any cached aggregate — reflects that
        single committed generation even while another thread is
        mid-:meth:`add_batch` or mid-:meth:`spill_commit`: mutators
        publish their in-memory effects in one rows-lock critical
        section, so no torn state is observable from in here.  The
        lock is re-entrant; keep transactions short (they stall the
        writer, not just other readers).
        """
        with self._rows_lock:
            yield self._generation

    def _seal_tail(self) -> None:
        if len(self._tail_domain) == 0:
            return
        if self._spill is not None:
            # Spill the sealed rows to a checksummed on-disk segment
            # and keep only a memory map resident.  The segment is
            # durable immediately but joins a manifest generation only
            # at the next :meth:`spill_commit`.  Its mergeable row
            # digest is computed here, once, while the rows are hot —
            # commits then combine per-segment digests in O(#segments).
            # Sealing is single-writer by contract, so the tail views
            # are stable while the segment write and mmap run outside
            # the rows lock; only the in-memory publish (chunk append,
            # tail clear) is a critical section.
            digest = self._rows_digest(
                self._tail_domain.view(),
                self._tail_time.view(),
                self._tail_count.view(),
            )
            info = self._spill.append_segment(
                self._tail_domain.view(),
                self._tail_time.view(),
                self._tail_count.view(),
                digest=digest,
            )
            part = self._spill.mmap_segment(info)
            with self._rows_lock:
                # Sealing rewrites tail rows as an immutable chunk — the
                # row *content* is unchanged, so caches stay valid.
                self._chunks.append(part)  # repro: noqa[REP204]
                self._chunk_spill_names.append(info.name)
                self._tail_domain.clear()
                self._tail_time.clear()
                self._tail_count.clear()
            with self._cache_lock:
                self._segment_digest_cache[info.name] = digest
        else:
            with self._rows_lock:
                if len(self._tail_domain) == 0:
                    return
                self._chunks.append(  # repro: noqa[REP204]
                    (
                        self._tail_domain.view().copy(),
                        self._tail_time.view().copy(),
                        self._tail_count.view().copy(),
                    )
                )
                self._chunk_spill_names.append(None)
                self._tail_domain.clear()
                self._tail_time.clear()
                self._tail_count.clear()

    def _parts(self) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Immutable row parts in insertion order, tail snapshot last.

        The streaming counterpart of :meth:`_columns`: aggregate
        builders iterate these instead of forcing one concatenation,
        so a spill-backed store touches one mmap'd segment at a time.
        The live tail is *copied* (it is small — at most ``_CHUNK``
        rows) so no part aliases a buffer later appends overwrite.
        """
        parts = list(self._chunks)
        if len(self._tail_domain):
            parts.append(
                (
                    self._tail_domain.view().copy(),
                    self._tail_time.view().copy(),
                    self._tail_count.view().copy(),
                )
            )
        return parts

    def _columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if (
            self._columns_cache is not None
            and self._columns_cache[0] == self._generation
        ):
            return self._columns_cache[1]
        if self._spill is not None:
            # Spill mode: a transient, *uncached* concatenation.  Only
            # the whole-store sorts (fingerprint, the reference scan)
            # still need it; everything else streams `_parts()`.
            # Caching or consolidating here would pin the full store in
            # RAM and defeat the mmap'd layout.
            parts = self._parts()
            if not parts:
                empty = np.empty(0, dtype=np.int64)
                return (empty, empty.copy(), empty.copy())
            if len(parts) == 1:
                return parts[0]
            return (
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
                np.concatenate([p[2] for p in parts]),
            )
        # Seal the mutable tail first so every part is an immutable
        # chunk — snapshots handed out here must never alias a buffer
        # later appends could overwrite.  The non-spill seal is pure
        # memory movement, so holding the rows lock across seal +
        # consolidate is IO-free and keeps the re-chunk atomic against
        # a concurrent sealer.
        self._seal_tail()
        with self._rows_lock:
            parts = self._chunks
            if not parts:
                empty = np.empty(0, dtype=np.int64)
                columns = (empty, empty.copy(), empty.copy())
            elif len(parts) == 1:
                columns = parts[0]
            else:
                columns = (
                    np.concatenate([p[0] for p in parts]),
                    np.concatenate([p[1] for p in parts]),
                    np.concatenate([p[2] for p in parts]),
                )
                # Consolidate: future reads only pay for newer chunks.
                # Content-preserving re-chunking of the same rows — a bump
                # here would wrongly invalidate every aggregate cache.
                self._chunks = [columns]  # repro: noqa[REP204]
                self._chunk_spill_names = [None]
        with self._cache_lock:
            self._columns_cache = (self._generation, columns)
        return columns

    def _cached(self, key: Any, build: Callable[[], Any]) -> Any:
        """Generation-keyed aggregate cache (stale entries rebuilt)."""
        entry = self._agg_cache.get(key)
        if entry is not None and entry[0] == self._generation:
            return entry[1]
        value = build()
        with self._cache_lock:
            self._agg_cache[key] = (self._generation, value)
        return value

    def _row_index(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR-style domain→rows index: (row order, per-domain starts).

        ``order[starts[d]:starts[d + 1]]`` are the row positions of
        domain ``d`` in insertion order — what lets per-domain queries
        skip the other 99.99% of the store.
        """
        if (
            self._index_cache is not None
            and self._index_cache[0] == self._generation
        ):
            return self._index_cache[1], self._index_cache[2]
        if self._spill is not None:
            # Concatenate only the id column (transient); times/counts
            # stay mmap'd and are gathered per-part on query.
            parts = self._parts()
            ids = (
                np.concatenate([p[0] for p in parts])
                if parts
                else np.empty(0, dtype=np.int64)
            )
        else:
            ids, _, _ = self._columns()
        order = np.argsort(ids, kind="stable")
        row_counts = np.bincount(ids, minlength=len(self._domains))
        starts = np.zeros(len(self._domains) + 1, dtype=np.int64)
        np.cumsum(row_counts, out=starts[1:])
        with self._cache_lock:
            self._index_cache = (self._generation, order, starts)
        return order, starts

    def warm_query_caches(self) -> None:
        """Build the columns and CSR-index caches on the calling thread.

        Analyses that fan per-domain queries out over reader threads
        (``expiry_timeline(jobs=N)``) call this once first: the lazy
        builders may reshape the chunk layout (tail seal,
        consolidation), which is single-writer by contract, so the
        caches must be published before readers race on them.
        """
        self._row_index()

    def _rows_for(self, domain_id: int) -> np.ndarray:
        order, starts = self._row_index()
        return order[starts[domain_id] : starts[domain_id + 1]]

    def _gather_rows(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, counts) at the given global row positions.

        ``rows`` must be ascending (CSR slices are: the stable argsort
        keeps a domain's rows in insertion order).  In spill mode the
        positions are split across the part boundaries with one
        ``searchsorted`` and gathered per mmap'd part, so a per-domain
        query never materializes the full columns.
        """
        if self._spill is None:
            _, times, counts = self._columns()
            return times[rows], counts[rows]
        parts = self._parts()
        if len(parts) == 1:
            return parts[0][1][rows], parts[0][2][rows]
        lengths = np.asarray([len(p[0]) for p in parts], dtype=np.int64)
        starts = np.zeros(len(parts) + 1, dtype=np.int64)
        np.cumsum(lengths, out=starts[1:])
        cuts = np.searchsorted(rows, starts)
        times_out = np.empty(len(rows), dtype=np.int64)
        counts_out = np.empty(len(rows), dtype=np.int64)
        for part_index, part in enumerate(parts):
            lo, hi = cuts[part_index], cuts[part_index + 1]
            if lo == hi:
                continue
            local = rows[lo:hi] - starts[part_index]
            times_out[lo:hi] = part[1][local]
            counts_out[lo:hi] = part[2][local]
        return times_out, counts_out

    def _aggregate_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Snapshot of the per-domain (first, last, totals) columns."""
        return (
            self._first_seen.view().copy(),
            self._last_seen.view().copy(),
            self._totals.view().copy(),
        )

    def aggregate_snapshot(
        self,
    ) -> Tuple[List[DomainName], np.ndarray, np.ndarray, np.ndarray]:
        """(domains, first_seen, last_seen, totals) in intern order.

        The columnar counterpart of looping :meth:`profile` over every
        domain: one copy of the aggregate columns instead of a Python
        object per domain.  Domains that were interned but never
        received a row carry their sentinels; interning always happens
        on the append path, so stores built through :meth:`ingest` /
        :meth:`add` / :meth:`add_rows` never contain such entries.
        """
        first_seen, last_seen, totals = self._aggregate_columns()
        return list(self._domains), first_seen, last_seen, totals

    # -- parallel aggregate plumbing ----------------------------------------

    def _row_name_array(self) -> np.ndarray:
        """Domain names as a fixed-width numpy string array, id-indexed."""
        return np.asarray(
            [str(d) for d in self._domains], dtype=np.str_
        )

    def _row_shards(self) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Row parts re-cut for the aggregate worker pool.

        The part-list snapshot happens under ``_cache_lock`` (REP30x
        discipline: snapshot under the lock, build outside it); the
        mapped work never runs while the lock is held.  With
        ``aggregate_jobs <= 1`` the parts come back untouched, so the
        serial builders keep streaming one mmap'd segment at a time;
        otherwise they are re-cut into ~``aggregate_jobs`` contiguous
        row-range shards for the pool.
        """
        with self._cache_lock:
            parts = self._parts()
        if self.aggregate_jobs <= 1:
            return parts
        return _reshard_rows(parts, self.aggregate_jobs)

    def _map_tasks(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Map ``fn`` over shard tasks on the aggregate worker pool.

        Process workers: the digest/fingerprint maps are per-row
        :mod:`hashlib` loops that hold the GIL, and the numpy maps are
        cheap enough that fork cost dominates only when the store is
        tiny (where ``map_shards`` runs inline anyway).  Tasks must be
        plain-array tuples — never ``self`` (the store holds an
        unpicklable lock, and shipping it would re-run every map
        against a private copy).
        """
        return map_shards(fn, tasks, jobs=self.aggregate_jobs, process=True)

    @classmethod
    def _from_arrays(
        cls,
        domains: List[DomainName],
        first_seen: np.ndarray,
        last_seen: np.ndarray,
        totals: np.ndarray,
        row_domain: np.ndarray,
        row_time: np.ndarray,
        row_count: np.ndarray,
    ) -> "PassiveDnsDatabase":
        """Rebuild a store from its column snapshot (archive loading)."""
        db = cls()
        db._id_of = {domain: i for i, domain in enumerate(domains)}
        db._domains = list(domains)
        db._first_seen.extend(np.asarray(first_seen, dtype=np.int64))
        db._last_seen.extend(np.asarray(last_seen, dtype=np.int64))
        db._totals.extend(np.asarray(totals, dtype=np.int64))
        for domain in domains:
            tld = domain.tld
            tld_id = db._tld_of.get(tld)
            if tld_id is None:
                tld_id = len(db._tlds)
                db._tld_of[tld] = tld_id
                db._tlds.append(tld)
            db._tld_ids.append(tld_id)
        db._chunks = [
            (
                np.ascontiguousarray(row_domain, dtype=np.int64),
                np.ascontiguousarray(row_time, dtype=np.int64),
                np.ascontiguousarray(row_count, dtype=np.int64),
            )
        ]
        db._chunk_spill_names = [None]
        db._n_rows = len(row_domain)
        db._generation = 1
        return db

    # -- durable spill ------------------------------------------------------

    @property
    def spill(self) -> Optional[SpillStore]:
        """The backing segment store, or ``None`` for in-memory mode."""
        return self._spill

    def _rows_digest(
        self, ids: np.ndarray, times: np.ndarray, counts: np.ndarray
    ) -> int:
        """Mergeable 128-bit multiset digest of the given rows.

        Per-row BLAKE2 hashes of the canonical ``name\\x00time\\x00count``
        line, summed mod 2**128 — order-insensitive and additive, so
        the digest of a merged segment is the sum of its inputs' and a
        commit's whole-store digest is one sum over per-segment values
        instead of a concat+sort over every row.
        """
        if len(ids) == 0:
            return 0
        row_names = self._row_name_array()[
            np.ascontiguousarray(ids, dtype=np.int64)
        ]
        return _digest_map((row_names, times, counts))

    def digest(self) -> str:
        """Order-insensitive, mergeable whole-store digest (32 hex).

        The multiset-sum counterpart of :meth:`fingerprint`: same rows
        in any order give the same value, but unlike the fingerprint it
        is computed from cached per-segment digests in O(#segments) on
        a spill-backed store — what makes checkpoint commits O(new
        rows).  :meth:`fingerprint` (SHA-256 over a canonical sort)
        stays the external identity; this digest is the store's own
        integrity record in the manifest.
        """
        return self._cached(("digest",), self._build_digest)

    def _build_digest(self) -> str:
        # Snapshot under the lock, hash outside it (REP30x): parts,
        # the segment-name list, and the per-segment cache are read in
        # one atomic step; the per-row BLAKE2 work — the expensive
        # part — then runs lock-free on the worker pool.
        with self._cache_lock:
            parts = self._parts()
            names = list(self._chunk_spill_names)
            cached = dict(self._segment_digest_cache)
        total = 0
        pending_named: List[Tuple[str, Tuple[np.ndarray, np.ndarray, np.ndarray]]] = []
        unnamed: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for index, part in enumerate(parts):
            name = names[index] if index < len(names) else None
            if name is None:
                unnamed.append(part)
                continue
            value = cached.get(name)
            if value is None:
                # Uncached segments are hashed whole (not re-cut) so
                # the result is cacheable per segment name.
                pending_named.append((name, part))
            else:
                total += value
        row_names = self._row_name_array()

        def task_of(part: Tuple[np.ndarray, np.ndarray, np.ndarray]):
            ids, times, counts = part
            return (
                row_names[np.ascontiguousarray(ids, dtype=np.int64)],
                times,
                counts,
            )

        shards = (
            unnamed
            if self.aggregate_jobs <= 1
            else _reshard_rows(unnamed, self.aggregate_jobs)
        )
        tasks = [task_of(part) for _, part in pending_named]
        tasks += [task_of(shard) for shard in shards]
        values = self._map_tasks(_digest_map, tasks)
        if pending_named:
            with self._cache_lock:
                for (name, _), value in zip(pending_named, values):
                    self._segment_digest_cache[name] = value
        total += sum(values)
        return f"{total & DIGEST_MASK:032x}"

    def _restore_from_spill(self, paranoid: bool = False) -> None:
        """Rehydrate from the spill store's recovered generation.

        The domain table comes from the ``domains`` sidecar; the row
        parts stay on disk as memory maps.  Per-segment digests are
        adopted from the manifest (``paranoid=True`` recomputes each
        from its rows and rejects a mismatch), then the whole-store
        digest — and, for manifests from before the digest era, the
        legacy whole-store fingerprint — is verified against the
        committed record.  A mismatch raises
        :class:`CorruptArchiveError` rather than serving silently
        wrong data.
        """
        store = self._spill
        assert store is not None
        blob = store.read_sidecar("domains")
        if blob is not None:
            with np.load(
                _stdio.BytesIO(blob), allow_pickle=True
            ) as payload:
                names = [str(d) for d in payload["domains"]]
                first_seen = np.asarray(payload["first_seen"], dtype=np.int64)
                last_seen = np.asarray(payload["last_seen"], dtype=np.int64)
                totals = np.asarray(payload["totals"], dtype=np.int64)
            if not (len(first_seen) == len(last_seen) == len(totals) == len(names)):
                raise CorruptArchiveError(
                    store.directory, "domain sidecar column lengths differ"
                )
            domains = [DomainName(name) for name in names]
            # Restore runs before the store is shared, but the guard
            # keeps the lockset uniform (REP301): every writer of the
            # domain table and row layout holds the rows lock.
            with self._rows_lock:
                self._id_of = {domain: i for i, domain in enumerate(domains)}
                self._domains = domains
                self._first_seen.extend(first_seen)
                self._last_seen.extend(last_seen)
                self._totals.extend(totals)
                for domain in domains:
                    tld = domain.tld
                    tld_id = self._tld_of.get(tld)
                    if tld_id is None:
                        tld_id = len(self._tlds)
                        self._tld_of[tld] = tld_id
                        self._tlds.append(tld)
                    self._tld_ids.append(tld_id)
        for info in store.segments():
            ids, times, counts = store.mmap_segment(info)
            if len(ids) and int(ids.max()) >= len(self._domains):
                raise CorruptArchiveError(
                    store.directory / "segments" / info.name,
                    "segment references a domain id beyond the sidecar table",
                )
            with self._rows_lock:
                self._chunks.append((ids, times, counts))
                self._chunk_spill_names.append(info.name)
                self._n_rows += len(ids)
            if info.digest is not None and not paranoid:
                value = info.digest
            else:
                value = self._rows_digest(ids, times, counts)
                if info.digest is not None and value != info.digest:
                    raise CorruptArchiveError(
                        store.directory / "segments" / info.name,
                        "segment row digest does not match manifest",
                    )
            with self._cache_lock:
                self._segment_digest_cache[info.name] = value
        if self._n_rows:
            self._generation = 1
        expected_digest = store.meta.get("store_digest")
        if expected_digest is not None and self.digest() != expected_digest:
            raise CorruptArchiveError(
                store.directory,
                "recovered store digest does not match manifest",
            )
        # Manifests committed before the digest era carried the sorted
        # whole-store fingerprint instead; keep honouring it.
        expected = store.meta.get("store_fingerprint")
        if expected is not None and self.fingerprint() != expected:
            raise CorruptArchiveError(
                store.directory,
                "recovered store fingerprint does not match manifest",
            )

    def _domains_sidecar_bytes(self) -> bytes:
        """Serialize the domain table + aggregates for the sidecar."""
        first_seen, last_seen, totals = self._aggregate_columns()
        buffer = _stdio.BytesIO()
        np.savez_compressed(
            buffer,
            domains=np.asarray(
                [str(d) for d in self._domains], dtype=object
            ),
            first_seen=first_seen,
            last_seen=last_seen,
            totals=totals,
        )
        return buffer.getvalue()

    def spill_commit(self, meta: Optional[Dict[str, Any]] = None) -> int:
        """Seal and commit the current contents as a new generation.

        Seals the tail into one last segment, writes the domain-table
        sidecar, and commits a manifest whose ``meta`` carries the
        caller's payload plus the mergeable store digest (verified on
        the next open).  The digest is combined from cached per-segment
        values, so the commit costs O(new rows), not O(store).  When
        ``spill_compact_threshold`` is set and the committed segment
        count has reached it, the store is compacted in the same call.
        Returns the (possibly superseding) committed generation.
        """
        if self._spill is None:
            raise ConfigError("store was not opened with spill_dir")
        self._seal_tail()
        self._spill.write_sidecar("domains", self._domains_sidecar_bytes())
        manifest_meta = dict(meta or {})
        manifest_meta["store_digest"] = self.digest()
        manifest_meta["rows"] = int(self._n_rows)
        manifest_meta["domains"] = len(self._domains)
        generation = self._spill.commit(manifest_meta)
        threshold = self._spill_compact_threshold
        if threshold and len(self._spill.segments()) >= threshold:
            compacted = self.spill_compact()
            if compacted is not None:
                generation = compacted
        return generation

    def spill_compact(self, min_segments: int = 2) -> Optional[int]:
        """Compact the committed segments into one superseding one.

        Delegates to :meth:`SpillStore.compact` (crash-safe generation
        supersession), then re-chunks this store's resident memory
        maps onto the merged segment.  Row content and order are
        unchanged, so every aggregate cache, the fingerprint, and the
        digest stay valid — which is also the post-compaction check:
        the merged segment's digest is recomputed from its rows and
        must equal the sum of its inputs' recorded digests (O(new
        rows)).  Returns the new generation, or ``None`` when there
        was nothing to compact.
        """
        if self._spill is None:
            raise ConfigError("store was not opened with spill_dir")
        if len(self._tail_domain):
            raise ConfigError(
                "spill_commit before compacting: the tail is unsealed"
            )
        generation = self._spill.compact(min_segments=min_segments)
        if generation is None:
            return None
        chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        names: List[Optional[str]] = []
        for info in self._spill.segments():
            part = self._spill.mmap_segment(info)
            if info.name not in self._segment_digest_cache:
                value = self._rows_digest(*part)
                if info.digest is not None and value != info.digest:
                    raise CorruptArchiveError(
                        self._spill.directory / "segments" / info.name,
                        "merged segment rows do not reproduce the "
                        "combined digest of its inputs",
                    )
                with self._cache_lock:
                    self._segment_digest_cache[info.name] = value
            chunks.append(part)
            names.append(info.name)
        # Content-preserving re-chunking of the same rows in the same
        # order — a bump here would wrongly invalidate every cache.
        # Published in one rows-lock critical section (the mmaps were
        # built above, outside the lock) so readers never see the
        # chunk list and the name list disagree.
        with self._rows_lock:
            self._chunks = chunks  # repro: noqa[REP204]
            self._chunk_spill_names = names
        live = {name for name in names if name is not None}
        with self._cache_lock:
            self._segment_digest_cache = {
                key: value
                for key, value in self._segment_digest_cache.items()
                if key in live
            }
        return generation

    def copy_rows_into(self, target: "PassiveDnsDatabase") -> None:
        """Replay every stored row into ``target``, part by part.

        The batched counterpart of feeding :meth:`iter_observations`
        through ``target.ingest``: domains are bulk-interned once and
        each immutable part lands via :meth:`add_batch`, so migrating
        a store into (or out of) a spill-backed one never loops rows
        in Python.  Insertion order is preserved, so the target's
        :meth:`fingerprint` matches this store's.
        """
        if not self._domains:
            return
        id_map = target.intern_many(self._domains)
        for ids, times, counts in self._parts():
            target.add_batch(id_map[ids], times, counts)

    # -- replay / integrity ------------------------------------------------

    def iter_observations(self, sensor_id: str = "replay") -> Iterator[DnsObservation]:
        """Re-emit every stored row as an NXDOMAIN observation.

        Rows come back in insertion order, so replaying them through a
        fault-free pipeline reproduces the store exactly — the entry
        point for the fault-sweep and checkpoint/resume machinery.
        """
        domains = self._domains
        for ids, times, counts in self._parts():
            for domain_id, timestamp, count in zip(
                ids.tolist(), times.tolist(), counts.tolist()
            ):
                yield DnsObservation(
                    qname=domains[domain_id],
                    rcode=RCode.NXDOMAIN,
                    timestamp=timestamp,
                    sensor_id=sensor_id,
                    count=count,
                )

    def fingerprint(self) -> str:
        """Order-insensitive SHA-256 of the store's contents.

        Rows are hashed in a canonical sort so that two stores holding
        the same observations — regardless of arrival order (retries
        and dead-letter replay reorder rows) — fingerprint identically.
        The sort and the per-row byte layout are computed with numpy
        (lexsort over interned name ranks, then one vectorized string
        build), but the digest is bit-identical to hashing the sorted
        ``name\\x00time\\x00count`` lines one by one.
        """
        return self._cached(("fingerprint",), self._build_fingerprint)

    def _build_fingerprint(self) -> str:
        digest = hashlib.sha256()
        ids, times, counts = self._columns()
        if len(ids) == 0:
            return digest.hexdigest()
        names = self._row_name_array()
        # Rank of each domain id under lexicographic name order; equal
        # to sorting the stringified rows since ids map 1:1 to names.
        rank = np.empty(len(names), dtype=np.int64)
        rank[np.argsort(names, kind="stable")] = np.arange(len(names))
        order = np.lexsort((counts, times, rank[ids]))
        # The canonical sort fixes the line sequence; the UTF-8 line
        # rendering is then embarrassingly parallel over contiguous
        # slices of it, and joining the slices with the same "\n"
        # separator reproduces the serial byte stream exactly.
        sorted_names = names[ids[order]]
        sorted_times = times[order]
        sorted_counts = counts[order]
        tasks = [
            (sorted_names[lo:hi], sorted_times[lo:hi], sorted_counts[lo:hi])
            for lo, hi in shard_bounds(len(order), self.aggregate_jobs)
            if lo != hi
        ]
        pieces = self._map_tasks(_fingerprint_map, tasks)
        digest.update(b"\n".join(pieces))
        digest.update(b"\n")
        return digest.hexdigest()

    def recent_keys(self) -> List[tuple]:
        """The dedup window's keys, oldest first (checkpoint payload)."""
        return list(self._recent_keys)

    def restore_recent_keys(self, keys: Iterable[tuple]) -> None:
        """Reload a dedup window saved by :meth:`recent_keys`.

        The restored window is trimmed to ``DEDUP_WINDOW`` newest keys
        so a checkpoint written under a larger window setting cannot
        silently over-retain suppression state.
        """
        restored: "OrderedDict[tuple, None]" = OrderedDict(
            (tuple(k), None) for k in keys
        )
        while len(restored) > self.DEDUP_WINDOW:
            restored.popitem(last=False)
        # The dedup window is suppression state consulted per-append,
        # not a row column; no generation-keyed cache reads it.
        self._recent_keys = restored  # repro: noqa[REP204]

    # -- global aggregates ---------------------------------------------------

    def total_responses(self) -> int:
        """Total NXDomain responses (the 1.07 T analogue)."""
        return int(self._totals.view().sum())

    def unique_domains(self) -> int:
        """Distinct NXDomains (the 146 B analogue)."""
        return len(self._domains)

    def row_count(self) -> int:
        return self._n_rows

    def monthly_response_series(self) -> Dict[str, int]:
        """NXDomain responses per calendar month (Figure 3's series)."""
        return dict(self._cached(("monthly",), self._build_monthly_series))

    def _build_monthly_series(self) -> Dict[str, int]:
        series: Dict[str, int] = {}
        # Bucket by month via 30.44-day bins would drift; instead map
        # each distinct day to its month key once (cheap: few thousand
        # distinct days over the study window).  Per-day sums stream
        # over the row shards (one map task each) so a spill-backed
        # store never concatenates; day-keyed sums commute across any
        # shard layout, and the final ascending-day walk reproduces
        # the single-pass insertion order exactly.
        day_sums: Dict[int, int] = {}
        tasks = [(times, counts) for _, times, counts in self._row_shards()]
        for unique_days, sums in self._map_tasks(_monthly_map, tasks):
            for day, total in zip(unique_days.tolist(), sums.tolist()):
                day_sums[day] = day_sums.get(day, 0) + total
        for day in sorted(day_sums):
            month = month_key(day * SECONDS_PER_DAY)
            series[month] = series.get(month, 0) + day_sums[day]
        return series

    def tld_histogram(self) -> Dict[str, Tuple[int, int]]:
        """Per-TLD (unique domains, total queries) — Figure 4's axes."""
        return dict(self._cached(("tld",), self._build_tld_histogram))

    def _build_tld_histogram(self) -> Dict[str, Tuple[int, int]]:
        if not self._domains:
            return {}
        # Snapshot the domain columns under the lock, reduce outside
        # it.  This histogram reduces the per-domain columns, not the
        # row parts, so the shard cut runs over the domain-id space.
        with self._cache_lock:
            tld_ids = self._tld_ids.view().copy()
            totals = self._totals.view().copy()
            tlds = list(self._tlds)
        if self.aggregate_jobs <= 1:
            tasks = [(tld_ids, totals, len(tlds))]
        else:
            tasks = [
                (tld_ids[lo:hi], totals[lo:hi], len(tlds))
                for lo, hi in shard_bounds(len(tld_ids), self.aggregate_jobs)
                if lo != hi
            ]
        domains_per = np.zeros(len(tlds), dtype=np.int64)
        queries_per = np.zeros(len(tlds), dtype=np.int64)
        for shard_domains, shard_queries in self._map_tasks(_tld_map, tasks):
            domains_per += shard_domains
            queries_per += shard_queries
        return {
            tld: (int(domains_per[tld_id]), int(queries_per[tld_id]))
            for tld_id, tld in enumerate(tlds)
        }

    def top_tlds(self, n: int = 20) -> List[Tuple[str, int, int]]:
        """Top TLDs by unique NXDomains: (tld, domains, queries)."""
        rows = [
            (tld, domains, queries)
            for tld, (domains, queries) in self.tld_histogram().items()
        ]
        rows.sort(key=lambda r: r[1], reverse=True)
        return rows[:n]

    # -- per-domain views ---------------------------------------------------------

    def profile(self, domain: DomainName) -> Optional[DomainProfile]:
        domain_id = self._id_of.get(domain.registered_domain())
        if domain_id is None:
            return None
        return DomainProfile(
            domain=self._domains[domain_id],
            first_seen=self._first_seen[domain_id],
            last_seen=self._last_seen[domain_id],
            total_queries=self._totals[domain_id],
        )

    def profiles(self) -> Iterable[DomainProfile]:
        """All per-domain aggregates (generator; the store can be big)."""
        for domain_id, domain in enumerate(self._domains):
            yield DomainProfile(
                domain=domain,
                first_seen=self._first_seen[domain_id],
                last_seen=self._last_seen[domain_id],
                total_queries=self._totals[domain_id],
            )

    def all_domains(self) -> List[DomainName]:
        return list(self._domains)

    def daily_series_for(
        self, domain: DomainName, start: int, end: int
    ) -> np.ndarray:
        """Query counts per day for one domain over [start, end).

        Served from the CSR domain→rows index: only the target
        domain's rows are touched, not the full row columns.
        """
        domain_id = self._id_of.get(domain.registered_domain())
        n_days = max((end - start) // SECONDS_PER_DAY, 0)
        series = np.zeros(n_days, dtype=np.int64)
        if domain_id is None or n_days == 0:
            return series
        rows = self._rows_for(domain_id)
        row_times, row_counts = self._gather_rows(rows)
        mask = (row_times >= start) & (row_times < end)
        offsets = (row_times[mask] - start) // SECONDS_PER_DAY
        np.add.at(series, offsets, row_counts[mask])
        return series

    def _daily_series_scan(
        self, domain: DomainName, start: int, end: int
    ) -> np.ndarray:
        """Reference full-column masked scan of :meth:`daily_series_for`.

        Kept as the correctness/benchmark baseline for the CSR index:
        identical output, O(total rows) instead of O(domain rows).
        """
        domain_id = self._id_of.get(domain.registered_domain())
        n_days = max((end - start) // SECONDS_PER_DAY, 0)
        series = np.zeros(n_days, dtype=np.int64)
        if domain_id is None or n_days == 0:
            return series
        ids, times, counts = self._columns()
        mask = (ids == domain_id) & (times >= start) & (times < end)
        offsets = (times[mask] - start) // SECONDS_PER_DAY
        np.add.at(series, offsets, counts[mask])
        return series

    def high_traffic_domains(
        self, min_monthly_queries: int
    ) -> List[DomainProfile]:
        """Domains averaging at least ``min_monthly_queries``/month.

        The paper's §3.3 selection threshold is 10,000/month (scaled
        in our workload).  Computed as one vectorized pass over the
        aggregate columns.
        """
        if not self._domains:
            return []
        lifespans = (
            self._last_seen.view() - self._first_seen.view()
        ) // SECONDS_PER_DAY
        months = np.maximum(lifespans, 1) / 30.0
        rates = self._totals.view() / months
        return [
            DomainProfile(
                domain=self._domains[domain_id],
                first_seen=self._first_seen[domain_id],
                last_seen=self._last_seen[domain_id],
                total_queries=self._totals[domain_id],
            )
            for domain_id in np.nonzero(rates >= min_monthly_queries)[0]
        ]

    # -- lifespan analyses (Figures 5 and 6) -----------------------------------------

    def lifespan_decay(self, max_days: int = 60) -> Tuple[np.ndarray, np.ndarray]:
        """(#domains, #queries) per day-offset since first NX observation.

        Day offset d counts domains that received at least one query on
        day d of their NX lifetime, and the total queries they received
        that day — the two series of Figure 5.
        """
        domains_series, queries_series = self._cached(
            ("lifespan", max_days), lambda: self._build_lifespan_decay(max_days)
        )
        return domains_series.copy(), queries_series.copy()

    def _build_lifespan_decay(
        self, max_days: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        domains_series = np.zeros(max_days, dtype=np.int64)
        queries_series = np.zeros(max_days, dtype=np.int64)
        with self._cache_lock:
            first_seen = self._first_seen.view().copy()
            n_domains = len(self._domains)
        # Map the row shards: query sums accumulate per shard and add
        # up in any cut; distinct domains per offset need unique
        # (offset, domain) pairs, so per-shard uniques are pooled and
        # deduplicated globally (the pool holds unique pairs only, far
        # fewer than rows — and a global unique of per-shard uniques
        # equals the unique of the raw rows, whatever the shard cut).
        tasks = [
            (ids, times, counts, first_seen[ids], max_days, n_domains)
            for ids, times, counts in self._row_shards()
        ]
        pair_pool: List[np.ndarray] = []
        for shard_queries, shard_pairs in self._map_tasks(_lifespan_map, tasks):
            queries_series += shard_queries
            pair_pool.append(shard_pairs)
        if pair_pool:
            unique_pairs = np.unique(np.concatenate(pair_pool))
            pair_offsets = unique_pairs // n_domains
            np.add.at(domains_series, pair_offsets, 1)
        return domains_series, queries_series

    def timeline_around(
        self,
        domain: DomainName,
        pivot: int,
        days_before: int,
        days_after: int,
    ) -> np.ndarray:
        """Daily query counts in [pivot - before, pivot + after) days.

        Index 0 is ``days_before`` days before the pivot; the pivot
        falls at index ``days_before``.  Figure 6 averages this over a
        domain sample with the pivot at expiry.
        """
        start = pivot - days_before * SECONDS_PER_DAY
        end = pivot + days_after * SECONDS_PER_DAY
        return self.daily_series_for(domain, start, end)
