"""The passive DNS database: a columnar NXDomain store.

The analytical heart of the scale study.  Rows are
``(domain_id, timestamp, count)`` triples held in numpy arrays (the
BigQuery-mirror stand-in); a domain dictionary interns names and keeps
per-domain aggregates (first/last seen, total queries, TLD).  All §4
aggregations — monthly volume, TLD histograms, lifespan decay, the
per-domain timelines of Figure 6 — are numpy reductions over these
columns.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.clock import SECONDS_PER_DAY, month_key
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.passivedns.record import DnsObservation
from repro.errors import ConfigError


@dataclass
class DomainProfile:
    """Per-domain aggregate view."""

    domain: DomainName
    first_seen: int
    last_seen: int
    total_queries: int

    @property
    def tld(self) -> str:
        return self.domain.tld

    def lifespan_days(self) -> int:
        return (self.last_seen - self.first_seen) // SECONDS_PER_DAY

    def monthly_rate(self) -> float:
        """Average queries per 30-day month over the observed span."""
        months = max(self.lifespan_days(), 1) / 30.0
        return self.total_queries / max(months, 1.0)


class PassiveDnsDatabase:
    """Columnar store of NXDomain observations with §4's query API."""

    _CHUNK = 1 << 16
    #: Bound on the duplicate-suppression window.  Redeliveries in real
    #: feeds are near-adjacent (a retried publish, an at-least-once
    #: redelivery), so a sliding window of recent observation keys is
    #: both sufficient and checkpointable.
    DEDUP_WINDOW = 4096

    def __init__(self, deduplicate: bool = False) -> None:
        self._id_of: Dict[DomainName, int] = {}
        self._domains: List[DomainName] = []
        self._first_seen: List[int] = []
        self._last_seen: List[int] = []
        self._totals: List[int] = []
        # Row storage: appended to lists, consolidated lazily.
        self._row_domain: List[int] = []
        self._row_time: List[int] = []
        self._row_count: List[int] = []
        self._frozen: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self.deduplicate = deduplicate
        self._recent_keys: "OrderedDict[tuple, None]" = OrderedDict()
        self.duplicates_suppressed = 0

    # -- ingestion --------------------------------------------------------

    def ingest(self, observation: DnsObservation) -> None:
        """Channel-subscriber entry point (NXDomains only).

        With ``deduplicate`` enabled, a redelivery of an observation
        whose key is still inside the sliding window is suppressed and
        counted — the idempotence that makes at-least-once channel
        delivery and dead-letter replay safe.
        """
        if not observation.is_nxdomain:
            return
        if self.deduplicate:
            key = observation.observation_key
            if key in self._recent_keys:
                self.duplicates_suppressed += 1
                return
            self._recent_keys[key] = None
            while len(self._recent_keys) > self.DEDUP_WINDOW:
                self._recent_keys.popitem(last=False)
        self.add(
            observation.registered_domain,
            observation.timestamp,
            observation.count,
        )

    def add(self, domain: DomainName, timestamp: int, count: int = 1) -> None:
        """Record ``count`` NXDomain responses for ``domain`` at ``timestamp``."""
        if count < 1:
            raise ConfigError("count must be at least 1")
        domain_id = self._intern(domain, timestamp)
        self._first_seen[domain_id] = min(self._first_seen[domain_id], timestamp)
        self._last_seen[domain_id] = max(self._last_seen[domain_id], timestamp)
        self._totals[domain_id] += count
        self._row_domain.append(domain_id)
        self._row_time.append(timestamp)
        self._row_count.append(count)
        self._frozen = None

    def _intern(self, domain: DomainName, timestamp: int) -> int:
        domain_id = self._id_of.get(domain)
        if domain_id is None:
            domain_id = len(self._domains)
            self._id_of[domain] = domain_id
            self._domains.append(domain)
            self._first_seen.append(timestamp)
            self._last_seen.append(timestamp)
            self._totals.append(0)
        return domain_id

    def _columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._frozen is None:
            self._frozen = (
                np.asarray(self._row_domain, dtype=np.int64),
                np.asarray(self._row_time, dtype=np.int64),
                np.asarray(self._row_count, dtype=np.int64),
            )
        return self._frozen

    # -- replay / integrity ------------------------------------------------

    def iter_observations(self, sensor_id: str = "replay") -> Iterator[DnsObservation]:
        """Re-emit every stored row as an NXDOMAIN observation.

        Rows come back in insertion order, so replaying them through a
        fault-free pipeline reproduces the store exactly — the entry
        point for the fault-sweep and checkpoint/resume machinery.
        """
        for domain_id, timestamp, count in zip(
            self._row_domain, self._row_time, self._row_count
        ):
            yield DnsObservation(
                qname=self._domains[domain_id],
                rcode=RCode.NXDOMAIN,
                timestamp=timestamp,
                sensor_id=sensor_id,
                count=count,
            )

    def fingerprint(self) -> str:
        """Order-insensitive SHA-256 of the store's contents.

        Rows are hashed in a canonical sort so that two stores holding
        the same observations — regardless of arrival order (retries
        and dead-letter replay reorder rows) — fingerprint identically.
        """
        digest = hashlib.sha256()
        rows = sorted(
            (str(self._domains[d]), t, c)
            for d, t, c in zip(
                self._row_domain, self._row_time, self._row_count
            )
        )
        for name, timestamp, count in rows:
            digest.update(f"{name}\x00{timestamp}\x00{count}\n".encode("utf-8"))
        return digest.hexdigest()

    def recent_keys(self) -> List[tuple]:
        """The dedup window's keys, oldest first (checkpoint payload)."""
        return list(self._recent_keys)

    def restore_recent_keys(self, keys: Iterable[tuple]) -> None:
        """Reload a dedup window saved by :meth:`recent_keys`."""
        self._recent_keys = OrderedDict((tuple(k), None) for k in keys)

    # -- global aggregates ---------------------------------------------------

    def total_responses(self) -> int:
        """Total NXDomain responses (the 1.07 T analogue)."""
        return int(sum(self._totals))

    def unique_domains(self) -> int:
        """Distinct NXDomains (the 146 B analogue)."""
        return len(self._domains)

    def row_count(self) -> int:
        return len(self._row_domain)

    def monthly_response_series(self) -> Dict[str, int]:
        """NXDomain responses per calendar month (Figure 3's series)."""
        _, times, counts = self._columns()
        series: Dict[str, int] = {}
        if len(times) == 0:
            return series
        # Bucket by month via 30.44-day bins would drift; instead map
        # each distinct day to its month key once (cheap: few thousand
        # distinct days over the study window).
        days = times // SECONDS_PER_DAY
        unique_days, inverse = np.unique(days, return_inverse=True)
        day_to_month = [
            month_key(int(day) * SECONDS_PER_DAY) for day in unique_days
        ]
        sums = np.zeros(len(unique_days), dtype=np.int64)
        np.add.at(sums, inverse, counts)
        for day_index, total in enumerate(sums):
            month = day_to_month[day_index]
            series[month] = series.get(month, 0) + int(total)
        return series

    def tld_histogram(self) -> Dict[str, Tuple[int, int]]:
        """Per-TLD (unique domains, total queries) — Figure 4's axes."""
        histogram: Dict[str, Tuple[int, int]] = {}
        for domain_id, domain in enumerate(self._domains):
            domains_so_far, queries_so_far = histogram.get(domain.tld, (0, 0))
            histogram[domain.tld] = (
                domains_so_far + 1,
                queries_so_far + self._totals[domain_id],
            )
        return histogram

    def top_tlds(self, n: int = 20) -> List[Tuple[str, int, int]]:
        """Top TLDs by unique NXDomains: (tld, domains, queries)."""
        rows = [
            (tld, domains, queries)
            for tld, (domains, queries) in self.tld_histogram().items()
        ]
        rows.sort(key=lambda r: r[1], reverse=True)
        return rows[:n]

    # -- per-domain views ---------------------------------------------------------

    def profile(self, domain: DomainName) -> Optional[DomainProfile]:
        domain_id = self._id_of.get(domain.registered_domain())
        if domain_id is None:
            return None
        return DomainProfile(
            domain=self._domains[domain_id],
            first_seen=self._first_seen[domain_id],
            last_seen=self._last_seen[domain_id],
            total_queries=self._totals[domain_id],
        )

    def profiles(self) -> Iterable[DomainProfile]:
        """All per-domain aggregates (generator; the store can be big)."""
        for domain_id, domain in enumerate(self._domains):
            yield DomainProfile(
                domain=domain,
                first_seen=self._first_seen[domain_id],
                last_seen=self._last_seen[domain_id],
                total_queries=self._totals[domain_id],
            )

    def all_domains(self) -> List[DomainName]:
        return list(self._domains)

    def daily_series_for(
        self, domain: DomainName, start: int, end: int
    ) -> np.ndarray:
        """Query counts per day for one domain over [start, end)."""
        domain_id = self._id_of.get(domain.registered_domain())
        n_days = max((end - start) // SECONDS_PER_DAY, 0)
        series = np.zeros(n_days, dtype=np.int64)
        if domain_id is None or n_days == 0:
            return series
        ids, times, counts = self._columns()
        mask = (ids == domain_id) & (times >= start) & (times < end)
        offsets = (times[mask] - start) // SECONDS_PER_DAY
        np.add.at(series, offsets, counts[mask])
        return series

    def high_traffic_domains(
        self, min_monthly_queries: int
    ) -> List[DomainProfile]:
        """Domains averaging at least ``min_monthly_queries``/month.

        The paper's §3.3 selection threshold is 10,000/month (scaled
        in our workload).
        """
        return [
            profile
            for profile in self.profiles()
            if profile.monthly_rate() >= min_monthly_queries
        ]

    # -- lifespan analyses (Figures 5 and 6) -----------------------------------------

    def lifespan_decay(self, max_days: int = 60) -> Tuple[np.ndarray, np.ndarray]:
        """(#domains, #queries) per day-offset since first NX observation.

        Day offset d counts domains that received at least one query on
        day d of their NX lifetime, and the total queries they received
        that day — the two series of Figure 5.
        """
        ids, times, counts = self._columns()
        domains_series = np.zeros(max_days, dtype=np.int64)
        queries_series = np.zeros(max_days, dtype=np.int64)
        if len(ids) == 0:
            return domains_series, queries_series
        first_seen = np.asarray(self._first_seen, dtype=np.int64)
        offsets = (times - first_seen[ids]) // SECONDS_PER_DAY
        in_window = (offsets >= 0) & (offsets < max_days)
        np.add.at(queries_series, offsets[in_window], counts[in_window])
        # Distinct domains per offset: unique (offset, domain) pairs.
        pair_keys = offsets[in_window] * np.int64(len(self._domains)) + ids[in_window]
        unique_pairs = np.unique(pair_keys)
        pair_offsets = unique_pairs // len(self._domains)
        np.add.at(domains_series, pair_offsets, 1)
        return domains_series, queries_series

    def timeline_around(
        self,
        domain: DomainName,
        pivot: int,
        days_before: int,
        days_after: int,
    ) -> np.ndarray:
        """Daily query counts in [pivot - before, pivot + after) days.

        Index 0 is ``days_before`` days before the pivot; the pivot
        falls at index ``days_before``.  Figure 6 averages this over a
        domain sample with the pivot at expiry.
        """
        start = pivot - days_before * SECONDS_PER_DAY
        end = pivot + days_after * SECONDS_PER_DAY
        return self.daily_series_for(domain, start, end)
