"""Uniform domain sampling (§4.2).

The paper cannot process 146 B NXDomains even on BigQuery, so it takes
a 1/1,000 uniform random sample of *domains* (not rows) and analyzes
those.  Sampling by domain preserves per-domain statistics (lifespan,
query rate) exactly for sampled domains, while scaling population-level
counts by the sampling ratio — which is why the paper can report both.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.dns.name import DomainName
from repro.errors import ConfigError


def sample_domains(
    domains: Sequence[DomainName],
    ratio: float,
    rng: np.random.Generator,
    at_least_one: bool = True,
) -> List[DomainName]:
    """A uniform random sample of ``ratio`` of the domain population.

    ``at_least_one`` guards small test populations against empty
    samples; real runs with millions of domains are unaffected.
    """
    if not 0.0 < ratio <= 1.0:
        raise ConfigError("ratio must lie in (0, 1]")
    population = len(domains)
    if population == 0:
        return []
    size = int(round(population * ratio))
    if size == 0 and at_least_one:
        size = 1
    indices = rng.choice(population, size=size, replace=False)
    return [domains[int(i)] for i in np.sort(indices)]


def scale_up(sampled_value: float, ratio: float) -> float:
    """Estimate a population-level count from a sampled count."""
    if not 0.0 < ratio <= 1.0:
        raise ConfigError("ratio must lie in (0, 1]")
    return sampled_value / ratio
