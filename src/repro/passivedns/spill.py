"""Crash-safe on-disk chunk spill: the durable segment store.

The paper's 8-year, 146 B-record Farsight store outlives any single
process; this module gives the columnar substrate the same property.
A :class:`SpillStore` owns a directory holding immutable row segments
(`.npy`, memory-mapped on read) described by a journaled, checksummed,
monotonically versioned JSON manifest:

```
<dir>/
  CURRENT                  name of the committed manifest (atomic swap)
  manifest-0000003.json    one per committed generation (self-checksummed)
  journal.log              append-only intent records (JSONL, fsync'd)
  segments/seg-0000001.npy immutable (3, n) int64 row triples
  quarantine/              damaged/orphaned files moved aside on open
```

Commit protocol (every arrow is a separate durability boundary):

1. append a ``segment-intent`` journal line → write the segment to a
   same-directory temp file → fsync → ``os.replace`` → fsync dir;
2. append a ``commit-intent`` line → write ``manifest-<gen>.json``
   (tmp+fsync+rename) → swap ``CURRENT`` (tmp+fsync+rename) → append a
   ``commit`` line.

:meth:`SpillStore.open` is the recovery scan: it verifies every
manifest's self-checksum and every referenced segment's CRC32/size,
quarantines torn manifests, damaged segments, orphaned temp files and
uncommitted segments into ``quarantine/`` with a typed
:class:`RecoveryReport`, and resumes from the newest fully consistent
generation.  It never returns silently wrong data: what it serves
passed every checksum, and everything else is named in the report.

All durable IO flows through :class:`_DurableIo`, whose boundaries an
optional storage fault injector (``repro.faults.injectors``:
``TornWriteInjector`` / ``BitFlipInjector`` / ``FsyncLossInjector``)
can corrupt or kill — the deterministic crash-at-every-write-boundary
harness in ``tests/passivedns/test_spill.py`` drives exactly that.
"""

from __future__ import annotations

import io
import json
import os
import re
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError, CorruptArchiveError

SPILL_FORMAT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]

_MANIFEST_RE = re.compile(r"^manifest-(\d{7})\.json$")
_SEGMENT_RE = re.compile(r"^seg-(\d{7})\.npy$")
_SIDECAR_RE = re.compile(r"^(?:[a-z]+)-(\d{7})\.bin$")


# ---------------------------------------------------------------------------
# atomic file primitives (shared with repro.passivedns.io)
# ---------------------------------------------------------------------------


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory entry so renames inside it are durable.

    Best-effort on platforms that cannot open directories (Windows);
    on POSIX this is the step that makes ``os.replace`` crash-safe.
    """
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` without ever exposing a torn file.

    Same-directory temp file, flush, fsync, then ``os.replace`` and a
    directory fsync — a crash at any point leaves either the old
    content or the new content, never a prefix.
    """
    target = Path(path)
    tmp = target.parent / (target.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    fsync_directory(target.parent)


class _DurableIo:
    """Every durable write of a spill directory, behind fault hooks.

    With no injector this is plain tmp+fsync+rename IO.  With one, each
    call below reports its boundaries to ``injector.decide`` and applies
    the returned :class:`~repro.faults.injectors.FaultAction` — torn
    payloads, flipped bits, lost fsyncs (the file rolls back to its
    pre-write content), and crashes before/after any boundary.
    """

    def __init__(self, injector: Optional[Any] = None) -> None:
        self.injector = injector
        #: Pre-write file contents, kept only under injection so a lost
        #: fsync can roll the file back (None = file did not exist).
        self._pre: Dict[str, Optional[bytes]] = {}

    # -- boundary plumbing --------------------------------------------------

    def _boundary(self, op: str, path: Path, data: Optional[bytes]) -> bytes:
        """Run one boundary: consult the injector, apply its action."""
        if self.injector is None:
            return data if data is not None else b""
        action = self.injector.decide(op, str(path), len(data or b""))
        if action.crash_before:
            self.injector.crash(f"before {op} {path.name}")
        mutated = data if data is not None else b""
        if action.truncate_to is not None:
            mutated = mutated[: action.truncate_to]
        if action.flip is not None and mutated:
            position, mask = action.flip
            buffer = bytearray(mutated)
            buffer[position % len(buffer)] ^= mask
            mutated = bytes(buffer)
        if action.lose and op == "fsync":
            self._rollback(path)
        self._apply(op, path, mutated)
        if action.crash_after:
            self.injector.crash(f"after {op} {path.name}")
        return mutated

    def _apply(self, op: str, path: Path, data: bytes) -> None:
        if op == "write":
            self._snapshot(path)
            with open(path, "wb") as handle:
                handle.write(data)
                handle.flush()
        elif op == "append":
            self._snapshot(path)
            with open(path, "ab") as handle:
                handle.write(data)
                handle.flush()
        elif op == "fsync":
            if path.exists():
                with open(path, "rb+") as handle:
                    os.fsync(handle.fileno())
            self._pre.pop(str(path), None)
        elif op == "dirsync":
            fsync_directory(path)

    def _snapshot(self, path: Path) -> None:
        """Record pre-write content once per unsynced write window."""
        if self.injector is None:
            return
        key = str(path)
        if key not in self._pre:
            self._pre[key] = path.read_bytes() if path.exists() else None

    def _rollback(self, path: Path) -> None:
        """Undo writes whose fsync was injected away."""
        previous = self._pre.pop(str(path), None)
        if previous is None:
            if path.exists():
                path.unlink()
        else:
            path.write_bytes(previous)

    # -- public operations --------------------------------------------------

    def write_atomic(self, path: Path, data: bytes) -> None:
        """Injected counterpart of :func:`atomic_write_bytes`."""
        if self.injector is None:
            atomic_write_bytes(path, data)
            return
        tmp = path.parent / (path.name + ".tmp")
        self._boundary("write", tmp, data)
        self._boundary("fsync", tmp, None)
        action = self.injector.decide("replace", str(path), 0)
        if action.crash_before:
            self.injector.crash(f"before replace {path.name}")
        os.replace(tmp, path)
        self._pre.pop(str(tmp), None)
        if action.crash_after:
            self.injector.crash(f"after replace {path.name}")
        self._boundary("dirsync", path.parent, None)

    def append_line(self, path: Path, line: str) -> None:
        """Append one journal line durably (append + fsync boundaries)."""
        payload = (line + "\n").encode("utf-8")
        if self.injector is None:
            with open(path, "ab") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            return
        self._boundary("append", path, payload)
        self._boundary("fsync", path, None)


# ---------------------------------------------------------------------------
# manifest / report record types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentInfo:
    """One immutable on-disk row segment."""

    name: str
    rows: int
    crc32: int

    def to_json(self) -> List[Any]:
        """Compact manifest form."""
        return [self.name, self.rows, self.crc32]

    @classmethod
    def from_json(cls, payload: List[Any]) -> "SegmentInfo":
        """Inverse of :meth:`to_json`."""
        return cls(str(payload[0]), int(payload[1]), int(payload[2]))


@dataclass(frozen=True)
class SidecarInfo:
    """A named auxiliary blob committed alongside the segments.

    The database layer stores its interned domain table here; the
    spill store only knows the blob's name and checksum.
    """

    name: str
    size: int
    crc32: int

    def to_json(self) -> List[Any]:
        """Compact manifest form."""
        return [self.name, self.size, self.crc32]

    @classmethod
    def from_json(cls, payload: List[Any]) -> "SidecarInfo":
        """Inverse of :meth:`to_json`."""
        return cls(str(payload[0]), int(payload[1]), int(payload[2]))


@dataclass(frozen=True)
class QuarantineEntry:
    """One file the recovery scan moved aside, and why."""

    #: Original name relative to the spill directory.
    path: str
    #: ``torn-manifest`` | ``damaged-segment`` | ``damaged-sidecar`` |
    #: ``orphan-segment`` | ``orphan-sidecar`` | ``orphan-temp``
    kind: str
    detail: str = ""


@dataclass
class RecoveryReport:
    """What :meth:`SpillStore.open` found and did."""

    #: Generation actually recovered (0 = empty store).
    generation: int = 0
    #: Generations whose manifests existed but could not be served.
    rejected_generations: List[int] = field(default_factory=list)
    quarantined: List[QuarantineEntry] = field(default_factory=list)
    #: The journal ended mid-record (a torn append) — informational.
    torn_journal_tail: bool = False
    #: Journal intents with no committed outcome (labels the orphans).
    unfinished_intents: List[str] = field(default_factory=list)

    def clean(self) -> bool:
        """True when recovery found nothing to repair or quarantine."""
        return (
            not self.quarantined
            and not self.rejected_generations
            and not self.torn_journal_tail
        )

    def summary(self) -> str:
        """One-line operator summary."""
        return (
            f"recovered generation {self.generation}; "
            f"{len(self.quarantined)} file(s) quarantined, "
            f"{len(self.rejected_generations)} generation(s) rejected"
        )


@dataclass(frozen=True)
class _Manifest:
    """A parsed, checksum-verified manifest file."""

    generation: int
    segments: Tuple[SegmentInfo, ...]
    sidecars: Tuple[SidecarInfo, ...]
    meta: Dict[str, Any]


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _stream_crc32(path: Path) -> int:
    """CRC32 of a file's bytes, streamed (segments can be large)."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                return crc & 0xFFFFFFFF
            crc = zlib.crc32(block, crc)


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class SpillStore:
    """A crash-safe, append-only segment store under one directory.

    Use :meth:`open` (which creates an empty store on a fresh
    directory and runs the recovery scan on an existing one), then
    :meth:`append_segment` / :meth:`write_sidecar` to stage data and
    :meth:`commit` to make a new generation durable.  Uncommitted
    stages are lost on crash — by design: the commit is the
    checkpoint boundary.
    """

    def __init__(
        self,
        directory: Path,
        io_layer: _DurableIo,
        manifest: Optional[_Manifest],
        report: RecoveryReport,
        next_segment: int,
        next_sidecar: int,
    ) -> None:
        self.directory = directory
        self._io = io_layer
        self._segments: List[SegmentInfo] = (
            list(manifest.segments) if manifest else []
        )
        self._sidecars: Dict[str, SidecarInfo] = {
            _sidecar_kind(s.name): s for s in (manifest.sidecars if manifest else ())
        }
        self.generation = manifest.generation if manifest else 0
        self.meta: Dict[str, Any] = dict(manifest.meta) if manifest else {}
        self.last_recovery = report
        self._next_segment = next_segment
        self._next_sidecar = next_sidecar
        #: Segments staged since the last commit (already on disk,
        #: referenced by no manifest yet).
        self._pending: List[SegmentInfo] = []

    # -- opening ------------------------------------------------------------

    @classmethod
    def open(
        cls, directory: PathLike, faults: Optional[Any] = None
    ) -> "SpillStore":
        """Open (or initialize) a spill directory, recovering if needed.

        Raises :class:`CorruptArchiveError` when ``directory`` exists
        but is not a spill store (e.g. it is a file, or holds foreign
        content where the layout should be).
        """
        root = Path(directory)
        if root.exists() and not root.is_dir():
            raise CorruptArchiveError(root, "spill path is not a directory")
        segments_dir = root / "segments"
        quarantine_dir = root / "quarantine"
        segments_dir.mkdir(parents=True, exist_ok=True)
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        io_layer = _DurableIo(faults)
        report = RecoveryReport()
        journal_intents = cls._scan_journal(root, report)
        manifests = cls._scan_manifests(root, quarantine_dir, report)
        chosen = cls._choose_generation(
            root, manifests, quarantine_dir, report
        )
        cls._quarantine_strays(
            root,
            segments_dir,
            quarantine_dir,
            [manifest for _, manifest in manifests],
            report,
            journal_intents,
        )
        report.generation = chosen.generation if chosen else 0
        next_segment, next_sidecar = cls._next_counters(root, journal_intents)
        return cls(
            root, io_layer, chosen, report, next_segment, next_sidecar
        )

    @staticmethod
    def _scan_journal(root: Path, report: RecoveryReport) -> List[Dict[str, Any]]:
        """Parse journal.log tolerantly; a torn tail is reported, not fatal."""
        journal = root / "journal.log"
        intents: List[Dict[str, Any]] = []
        if not journal.exists():
            return intents
        raw = journal.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        committed: set = set()
        for index, line in enumerate(lines):
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Only the final record can legitimately be torn; any
                # earlier damage is still just reported — the journal
                # is advisory, manifests/checksums are authoritative.
                report.torn_journal_tail = True
                continue
            if not isinstance(record, dict):
                report.torn_journal_tail = True
                continue
            intents.append(record)
            if record.get("op") == "commit":
                committed.add(int(record.get("generation", -1)))
        for record in intents:
            if (
                record.get("op") == "commit-intent"
                and int(record.get("generation", -1)) not in committed
            ):
                report.unfinished_intents.append(
                    f"commit-intent generation {record.get('generation')}"
                )
        return intents

    @staticmethod
    def _scan_manifests(
        root: Path, quarantine_dir: Path, report: RecoveryReport
    ) -> List[Tuple[Path, _Manifest]]:
        """Load every manifest file, quarantining the unverifiable ones."""
        found: List[Tuple[Path, _Manifest]] = []
        for path in sorted(root.glob("manifest-*.json")):
            if not _MANIFEST_RE.match(path.name):
                continue
            try:
                manifest = _parse_manifest(path.read_bytes())
            except CorruptArchiveError as error:
                _quarantine(path, quarantine_dir)
                report.quarantined.append(
                    QuarantineEntry(path.name, "torn-manifest", error.detail)
                )
                continue
            found.append((path, manifest))
        found.sort(key=lambda item: item[1].generation)
        return found

    @classmethod
    def _choose_generation(
        cls,
        root: Path,
        manifests: List[Tuple[Path, _Manifest]],
        quarantine_dir: Path,
        report: RecoveryReport,
    ) -> Optional[_Manifest]:
        """Newest generation whose segments and sidecars all verify.

        A generation that references a damaged file is rejected (the
        damaged file quarantined) and the scan falls back to the next
        older one; segments shared with the survivor are of course
        kept.  ``CURRENT`` is advisory — a lost swap must not hide a
        fully committed newer manifest, and a torn ``CURRENT`` must
        not take the store down.
        """
        damaged: set = set()
        for path, manifest in reversed(manifests):
            bad: List[QuarantineEntry] = []
            for segment in manifest.segments:
                problem = _verify_segment(root / "segments" / segment.name, segment)
                if problem is not None:
                    bad.append(
                        QuarantineEntry(
                            f"segments/{segment.name}", "damaged-segment", problem
                        )
                    )
            for sidecar in manifest.sidecars:
                problem = _verify_sidecar(root / sidecar.name, sidecar)
                if problem is not None:
                    bad.append(
                        QuarantineEntry(sidecar.name, "damaged-sidecar", problem)
                    )
            if not bad:
                return manifest
            report.rejected_generations.append(manifest.generation)
            for entry in bad:
                if entry.path in damaged:
                    continue
                damaged.add(entry.path)
                target = root / entry.path
                if target.exists():
                    _quarantine(target, quarantine_dir)
                report.quarantined.append(entry)
        return None

    @staticmethod
    def _quarantine_strays(
        root: Path,
        segments_dir: Path,
        quarantine_dir: Path,
        manifests: List[_Manifest],
        report: RecoveryReport,
        journal_intents: List[Dict[str, Any]],
    ) -> None:
        """Move aside temp files and uncommitted segments/sidecars.

        A file referenced by *any* checksum-valid manifest is kept —
        older generations are the fallback chain for future recoveries
        — so only files no committed manifest ever named (uncommitted
        stages from a crashed writer) are moved aside.
        """
        referenced = {s.name for m in manifests for s in m.segments}
        sidecar_names = {s.name for m in manifests for s in m.sidecars}
        intended = {
            str(record.get("name"))
            for record in journal_intents
            if record.get("op") in ("segment-intent", "sidecar-intent")
        }
        for path in sorted(root.rglob("*.tmp")):
            if quarantine_dir in path.parents:
                continue
            relative = path.relative_to(root).as_posix()
            _quarantine(path, quarantine_dir)
            report.quarantined.append(
                QuarantineEntry(relative, "orphan-temp", "interrupted write")
            )
        for path in sorted(segments_dir.glob("seg-*.npy")):
            if path.name in referenced:
                continue
            detail = (
                "journaled intent, never committed"
                if path.name in intended
                else "referenced by no committed manifest"
            )
            _quarantine(path, quarantine_dir)
            report.quarantined.append(
                QuarantineEntry(f"segments/{path.name}", "orphan-segment", detail)
            )
        for path in sorted(root.glob("*.bin")):
            if path.name in sidecar_names:
                continue
            detail = (
                "journaled intent, never committed"
                if path.name in intended
                else "referenced by no committed manifest"
            )
            _quarantine(path, quarantine_dir)
            report.quarantined.append(
                QuarantineEntry(path.name, "orphan-sidecar", detail)
            )

    @staticmethod
    def _next_counters(
        root: Path, journal_intents: List[Dict[str, Any]]
    ) -> Tuple[int, int]:
        """Counters strictly above anything ever named, even quarantined."""
        highest_segment = 0
        highest_sidecar = 0
        candidates = [
            path.name
            for path in list(root.rglob("seg-*.npy"))
            + list(root.glob("*.bin"))
            + list((root / "quarantine").glob("*"))
        ]
        candidates.extend(
            str(record.get("name", ""))
            for record in journal_intents
            if record.get("op") in ("segment-intent", "sidecar-intent")
        )
        for name in candidates:
            match = _SEGMENT_RE.match(name)
            if match:
                highest_segment = max(highest_segment, int(match.group(1)))
            match = _SIDECAR_RE.match(name)
            if match:
                highest_sidecar = max(highest_sidecar, int(match.group(1)))
        return highest_segment + 1, highest_sidecar + 1

    # -- reading ------------------------------------------------------------

    def segments(self) -> List[SegmentInfo]:
        """Committed + staged segments, in append order."""
        return list(self._segments) + list(self._pending)

    def row_count(self) -> int:
        """Total rows across committed and staged segments."""
        return sum(info.rows for info in self.segments())

    def mmap_segment(
        self, info: SegmentInfo
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Memory-map one segment as its (ids, times, counts) triple."""
        path = self.directory / "segments" / info.name
        try:
            stacked = np.load(path, mmap_mode="r")
        except (OSError, ValueError) as error:
            raise CorruptArchiveError(path, f"unreadable segment: {error}")
        if stacked.ndim != 2 or stacked.shape[0] != 3:
            raise CorruptArchiveError(
                path, f"segment has shape {stacked.shape}, expected (3, n)"
            )
        return stacked[0], stacked[1], stacked[2]

    def read_sidecar(self, kind: str) -> Optional[bytes]:
        """The named sidecar's verified bytes (None when absent)."""
        info = self._sidecars.get(kind)
        if info is None:
            return None
        path = self.directory / info.name
        data = path.read_bytes()
        if _crc32(data) != info.crc32:
            raise CorruptArchiveError(path, "sidecar checksum mismatch")
        return data

    # -- writing ------------------------------------------------------------

    def append_segment(
        self, ids: np.ndarray, times: np.ndarray, counts: np.ndarray
    ) -> SegmentInfo:
        """Stage one immutable row segment (durable but uncommitted)."""
        if not (len(ids) == len(times) == len(counts)):
            raise ConfigError("segment columns must have equal length")
        if len(ids) == 0:
            raise ConfigError("cannot spill an empty segment")
        stacked = np.vstack(
            [
                np.ascontiguousarray(ids, dtype=np.int64),
                np.ascontiguousarray(times, dtype=np.int64),
                np.ascontiguousarray(counts, dtype=np.int64),
            ]
        )
        buffer = io.BytesIO()
        np.save(buffer, stacked)
        data = buffer.getvalue()
        name = f"seg-{self._next_segment:07d}.npy"
        self._next_segment += 1
        info = SegmentInfo(name=name, rows=len(ids), crc32=_crc32(data))
        self._journal(
            {"op": "segment-intent", "name": name, "rows": info.rows}
        )
        path = self.directory / "segments" / name
        self._io.write_atomic(path, data)
        # Read-back verification: the segment is memory-mapped into
        # service immediately, so a write corrupted in flight (a
        # flipped bit, a short write) must be caught *here*, not at
        # the next open.  At-rest rot is still the recovery scan's job.
        written = _stream_crc32(path)
        if written != info.crc32:
            raise CorruptArchiveError(
                path,
                "post-write verification failed "
                f"(expected {info.crc32:#010x}, file {written:#010x})",
            )
        self._pending.append(info)
        return info

    def write_sidecar(self, kind: str, data: bytes) -> SidecarInfo:
        """Stage a named auxiliary blob for the next commit."""
        if not kind.isalpha() or not kind.islower():
            raise ConfigError("sidecar kind must be a lowercase word")
        name = f"{kind}-{self._next_sidecar:07d}.bin"
        self._next_sidecar += 1
        info = SidecarInfo(name=name, size=len(data), crc32=_crc32(data))
        self._journal({"op": "sidecar-intent", "name": name})
        self._io.write_atomic(self.directory / name, data)
        self._sidecars[kind] = info
        return info

    def commit(self, meta: Optional[Dict[str, Any]] = None) -> int:
        """Make everything staged durable as a new generation.

        Returns the committed generation number.  The manifest lands
        via tmp+fsync+rename, then ``CURRENT`` swings to it — a crash
        between the two leaves a fully valid manifest that recovery
        still prefers (``CURRENT`` is advisory).
        """
        generation = self.generation + 1
        segments = list(self._segments) + list(self._pending)
        payload = {
            "format": SPILL_FORMAT_VERSION,
            "generation": generation,
            "segments": [s.to_json() for s in segments],
            "sidecars": [
                self._sidecars[kind].to_json()
                for kind in sorted(self._sidecars)
            ],
            "meta": dict(meta or {}),
        }
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        document = json.dumps(
            {"payload": payload, "checksum": _crc32(encoded)},
            sort_keys=True,
            indent=1,
        ).encode("utf-8")
        name = f"manifest-{generation:07d}.json"
        self._journal(
            {
                "op": "commit-intent",
                "generation": generation,
                "segments": [s.name for s in self._pending],
            }
        )
        self._io.write_atomic(self.directory / name, document)
        self._io.write_atomic(self.directory / "CURRENT", (name + "\n").encode())
        self._journal({"op": "commit", "generation": generation})
        self.generation = generation
        self._segments = segments
        self._pending = []
        self.meta = dict(meta or {})
        return generation

    def _journal(self, record: Dict[str, Any]) -> None:
        self._io.append_line(
            self.directory / "journal.log", json.dumps(record, sort_keys=True)
        )


def _sidecar_kind(name: str) -> str:
    return name.split("-", 1)[0]


def _quarantine(path: Path, quarantine_dir: Path) -> None:
    """Move a damaged/orphaned file aside (never delete evidence)."""
    target = quarantine_dir / path.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = quarantine_dir / f"{path.name}.{suffix}"
    os.replace(path, target)


def _parse_manifest(data: bytes) -> _Manifest:
    """Decode + checksum-verify one manifest document."""
    try:
        document = json.loads(data.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CorruptArchiveError("<manifest>", f"unparseable JSON: {error}")
    if not isinstance(document, dict) or "payload" not in document:
        raise CorruptArchiveError("<manifest>", "missing payload envelope")
    payload = document["payload"]
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    if _crc32(encoded) != document.get("checksum"):
        raise CorruptArchiveError("<manifest>", "manifest checksum mismatch")
    if payload.get("format") != SPILL_FORMAT_VERSION:
        raise CorruptArchiveError(
            "<manifest>", f"unsupported spill format {payload.get('format')}"
        )
    return _Manifest(
        generation=int(payload["generation"]),
        segments=tuple(
            SegmentInfo.from_json(item) for item in payload["segments"]
        ),
        sidecars=tuple(
            SidecarInfo.from_json(item) for item in payload.get("sidecars", [])
        ),
        meta=dict(payload.get("meta", {})),
    )


def _verify_segment(path: Path, info: SegmentInfo) -> Optional[str]:
    """None when the segment file is intact, else the failure detail."""
    if not path.exists():
        return "segment file missing"
    crc = _stream_crc32(path)
    if crc != info.crc32:
        return f"checksum mismatch (manifest {info.crc32:#010x}, file {crc:#010x})"
    try:
        stacked = np.load(path, mmap_mode="r")
    except (OSError, ValueError) as error:
        return f"unreadable npy: {error}"
    if stacked.ndim != 2 or stacked.shape[0] != 3 or stacked.shape[1] != info.rows:
        return f"shape {stacked.shape} does not match manifest rows {info.rows}"
    return None


def _verify_sidecar(path: Path, info: SidecarInfo) -> Optional[str]:
    """None when the sidecar file is intact, else the failure detail."""
    if not path.exists():
        return "sidecar file missing"
    data = path.read_bytes()
    if len(data) != info.size:
        return f"size {len(data)} does not match manifest size {info.size}"
    crc = _crc32(data)
    if crc != info.crc32:
        return f"checksum mismatch (manifest {info.crc32:#010x}, file {crc:#010x})"
    return None
