"""Crash-safe on-disk chunk spill: the durable segment store.

The paper's 8-year, 146 B-record Farsight store outlives any single
process; this module gives the columnar substrate the same property.
A :class:`SpillStore` owns a directory holding immutable row segments
(`.npy`, memory-mapped on read) described by a journaled, checksummed,
monotonically versioned JSON manifest:

```
<dir>/
  CURRENT                  name of the committed manifest (atomic swap)
  manifest-0000003.json    one per committed generation (self-checksummed)
  journal.log              append-only intent records (JSONL, fsync'd)
  verified.json            verified-at cache (stat+CRC, self-checksummed)
  segments/seg-0000001.npy immutable (3, n) int64 row triples
  quarantine/              damaged/orphaned files moved aside on open
  quarantine/index.json    typed retention index for quarantined files
```

Commit protocol (every arrow is a separate durability boundary):

1. append a ``segment-intent`` journal line → write the segment to a
   same-directory temp file → fsync → ``os.replace`` → fsync dir;
2. append a ``commit-intent`` line → write ``manifest-<gen>.json``
   (tmp+fsync+rename) → swap ``CURRENT`` (tmp+fsync+rename) → append a
   ``commit`` line.

:meth:`SpillStore.compact` is the log-structured half: it merges every
committed segment into one, commits the merged manifest through the
same journaled discipline, read-back-verifies it, and only *then*
retires the superseded files (``unlink`` boundaries, manifests first).
The supersession invariant: a crash at any boundary recovers either
the old generation or the new one, never a hybrid.

:meth:`SpillStore.open` is the recovery scan: it verifies every
manifest's self-checksum and every referenced segment's CRC32/size,
quarantines torn manifests, damaged segments, orphaned temp files and
uncommitted segments into ``quarantine/`` with a typed
:class:`RecoveryReport`, and resumes from the newest fully consistent
generation.  It never returns silently wrong data: what it serves
passed every checksum, and everything else is named in the report.
Reopens are incremental: segments whose ``verified.json`` record still
matches on stat (mtime+size) and manifest CRC skip the byte stream;
``paranoid=True`` ignores the cache and streams everything, and a
missing/damaged cache degrades to exactly that full scan.
``read_only=True`` opens a store for serving: nothing is created,
moved, or written — would-be quarantine actions are only *reported* —
so a reader can safely open a directory another process is writing.

All durable IO flows through :class:`_DurableIo`, whose boundaries an
optional storage fault injector (``repro.faults.injectors``:
``TornWriteInjector`` / ``BitFlipInjector`` / ``FsyncLossInjector``)
can corrupt or kill — the deterministic crash-at-every-write-boundary
harness in ``tests/passivedns/test_spill.py`` drives exactly that.
"""

from __future__ import annotations

import io
import json
import os
import re
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError, CorruptArchiveError

SPILL_FORMAT_VERSION = 1
VERIFIED_CACHE_VERSION = 1
VERIFIED_CACHE_NAME = "verified.json"
QUARANTINE_INDEX_NAME = "index.json"

#: Modulus of the mergeable per-segment row digest (see
#: ``PassiveDnsDatabase.digest``): per-row BLAKE2 hashes summed mod
#: 2**128, so the digest of a merged segment is the sum of its inputs'.
DIGEST_MASK = (1 << 128) - 1

PathLike = Union[str, "os.PathLike[str]"]

_MANIFEST_RE = re.compile(r"^manifest-(\d{7})\.json$")
_SEGMENT_RE = re.compile(r"^seg-(\d{7})\.npy$")
_SIDECAR_RE = re.compile(r"^(?:[a-z]+)-(\d{7})\.bin$")


# ---------------------------------------------------------------------------
# atomic file primitives (shared with repro.passivedns.io)
# ---------------------------------------------------------------------------


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory entry so renames inside it are durable.

    Best-effort on platforms that cannot open directories (Windows);
    on POSIX this is the step that makes ``os.replace`` crash-safe.
    """
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` without ever exposing a torn file.

    Same-directory temp file, flush, fsync, then ``os.replace`` and a
    directory fsync — a crash at any point leaves either the old
    content or the new content, never a prefix.
    """
    target = Path(path)
    tmp = target.parent / (target.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    fsync_directory(target.parent)


class _DurableIo:
    """Every durable write of a spill directory, behind fault hooks.

    With no injector this is plain tmp+fsync+rename IO.  With one, each
    call below reports its boundaries to ``injector.decide`` and applies
    the returned :class:`~repro.faults.injectors.FaultAction` — torn
    payloads, flipped bits, lost fsyncs (the file rolls back to its
    pre-write content), and crashes before/after any boundary.
    """

    def __init__(self, injector: Optional[Any] = None) -> None:
        self.injector = injector
        #: Pre-write file contents, kept only under injection so a lost
        #: fsync can roll the file back (None = file did not exist).
        self._pre: Dict[str, Optional[bytes]] = {}

    # -- boundary plumbing --------------------------------------------------

    def _boundary(self, op: str, path: Path, data: Optional[bytes]) -> bytes:
        """Run one boundary: consult the injector, apply its action."""
        if self.injector is None:
            return data if data is not None else b""
        action = self.injector.decide(op, str(path), len(data or b""))
        if action.crash_before:
            self.injector.crash(f"before {op} {path.name}")
        mutated = data if data is not None else b""
        if action.truncate_to is not None:
            mutated = mutated[: action.truncate_to]
        if action.flip is not None and mutated:
            position, mask = action.flip
            buffer = bytearray(mutated)
            buffer[position % len(buffer)] ^= mask
            mutated = bytes(buffer)
        if action.lose and op == "fsync":
            self._rollback(path)
        self._apply(op, path, mutated)
        if action.crash_after:
            self.injector.crash(f"after {op} {path.name}")
        return mutated

    def _apply(self, op: str, path: Path, data: bytes) -> None:
        if op == "write":
            self._snapshot(path)
            with open(path, "wb") as handle:
                handle.write(data)
                handle.flush()
        elif op == "append":
            self._snapshot(path)
            with open(path, "ab") as handle:
                handle.write(data)
                handle.flush()
        elif op == "fsync":
            if path.exists():
                with open(path, "rb+") as handle:
                    os.fsync(handle.fileno())
            self._pre.pop(str(path), None)
        elif op == "dirsync":
            fsync_directory(path)

    def _snapshot(self, path: Path) -> None:
        """Record pre-write content once per unsynced write window."""
        if self.injector is None:
            return
        key = str(path)
        if key not in self._pre:
            self._pre[key] = path.read_bytes() if path.exists() else None

    def _rollback(self, path: Path) -> None:
        """Undo writes whose fsync was injected away."""
        previous = self._pre.pop(str(path), None)
        if previous is None:
            if path.exists():
                path.unlink()
        else:
            path.write_bytes(previous)

    # -- public operations --------------------------------------------------

    def write_atomic(self, path: Path, data: bytes) -> None:
        """Injected counterpart of :func:`atomic_write_bytes`."""
        if self.injector is None:
            atomic_write_bytes(path, data)
            return
        tmp = path.parent / (path.name + ".tmp")
        self._boundary("write", tmp, data)
        self._boundary("fsync", tmp, None)
        action = self.injector.decide("replace", str(path), 0)
        if action.crash_before:
            self.injector.crash(f"before replace {path.name}")
        os.replace(tmp, path)
        self._pre.pop(str(tmp), None)
        if action.crash_after:
            self.injector.crash(f"after replace {path.name}")
        self._boundary("dirsync", path.parent, None)

    def append_line(self, path: Path, line: str) -> None:
        """Append one journal line durably (append + fsync boundaries)."""
        payload = (line + "\n").encode("utf-8")
        if self.injector is None:
            with open(path, "ab") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            return
        self._boundary("append", path, payload)
        self._boundary("fsync", path, None)

    def unlink(self, path: Path) -> None:
        """Remove one retired file (an ``unlink`` boundary).

        A lost unlink (``FaultAction.lose``) leaves the file in place —
        the removal never reached the disk — which is why retirement
        tolerates already-present debris: recovery quarantines it.
        """
        if self.injector is None:
            self._unlink_quiet(path)
            return
        action = self.injector.decide("unlink", str(path), 0)
        if action.crash_before:
            self.injector.crash(f"before unlink {path.name}")
        if not action.lose:
            self._unlink_quiet(path)
        if action.crash_after:
            self.injector.crash(f"after unlink {path.name}")

    @staticmethod
    def _unlink_quiet(path: Path) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass

    def sync_directory(self, directory: Path) -> None:
        """Flush a directory entry (a ``dirsync`` boundary)."""
        if self.injector is None:
            fsync_directory(directory)
            return
        self._boundary("dirsync", directory, None)


# ---------------------------------------------------------------------------
# manifest / report record types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentInfo:
    """One immutable on-disk row segment."""

    name: str
    rows: int
    crc32: int
    #: Optional mergeable 128-bit multiset digest of the rows (sum of
    #: per-row BLAKE2 hashes mod 2**128).  ``None`` for segments
    #: written before the digest era; merged segments inherit the sum
    #: of their inputs' digests, which is what makes post-compaction
    #: verification O(new rows) instead of O(store).
    digest: Optional[int] = None

    def to_json(self) -> List[Any]:
        """Compact manifest form (digest as hex, omitted when absent)."""
        if self.digest is None:
            return [self.name, self.rows, self.crc32]
        return [self.name, self.rows, self.crc32, f"{self.digest:032x}"]

    @classmethod
    def from_json(cls, payload: List[Any]) -> "SegmentInfo":
        """Inverse of :meth:`to_json`."""
        digest = int(str(payload[3]), 16) if len(payload) > 3 else None
        return cls(str(payload[0]), int(payload[1]), int(payload[2]), digest)


@dataclass(frozen=True)
class SidecarInfo:
    """A named auxiliary blob committed alongside the segments.

    The database layer stores its interned domain table here; the
    spill store only knows the blob's name and checksum.
    """

    name: str
    size: int
    crc32: int

    def to_json(self) -> List[Any]:
        """Compact manifest form."""
        return [self.name, self.size, self.crc32]

    @classmethod
    def from_json(cls, payload: List[Any]) -> "SidecarInfo":
        """Inverse of :meth:`to_json`."""
        return cls(str(payload[0]), int(payload[1]), int(payload[2]))


@dataclass(frozen=True)
class QuarantineEntry:
    """One file the recovery scan moved aside, and why.

    In a :class:`RecoveryReport`, ``path`` is the original name
    relative to the spill directory; entries returned by
    :meth:`SpillStore.quarantine_entries` instead carry the file's
    current name inside ``quarantine/``.  A read-only open *reports*
    entries without moving anything.
    """

    path: str
    #: ``torn-manifest`` | ``damaged-segment`` | ``damaged-sidecar`` |
    #: ``orphan-segment`` | ``orphan-sidecar`` | ``orphan-temp`` |
    #: ``damaged-cache`` | ``unknown`` (predates the index)
    kind: str
    detail: str = ""
    #: Store generation live when the file was quarantined (0 when
    #: unknown) — the retention key for :meth:`purge_quarantine`.
    generation: int = 0


@dataclass
class RecoveryReport:
    """What :meth:`SpillStore.open` found and did."""

    #: Generation actually recovered (0 = empty store).
    generation: int = 0
    #: Generations whose manifests existed but could not be served.
    rejected_generations: List[int] = field(default_factory=list)
    quarantined: List[QuarantineEntry] = field(default_factory=list)
    #: The journal ended mid-record (a torn append) — informational.
    torn_journal_tail: bool = False
    #: Journal intents with no committed outcome (labels the orphans).
    unfinished_intents: List[str] = field(default_factory=list)
    #: Segment files whose bytes were CRC-streamed during this open
    #: (the full-scan cost the verified-at cache exists to avoid).
    segments_crc_streamed: int = 0
    #: Segment/sidecar verifications satisfied by the verified-at
    #: cache (stat match + manifest CRC equality, no byte stream).
    cache_hits: int = 0
    #: Fate of the verified-at cache for this open: ``"loaded"`` |
    #: ``"missing"`` | ``"damaged"`` | ``"paranoid"`` (deliberately
    #: bypassed).
    verified_cache: str = "missing"

    def clean(self) -> bool:
        """True when recovery found nothing to repair or quarantine."""
        return (
            not self.quarantined
            and not self.rejected_generations
            and not self.torn_journal_tail
        )

    def summary(self) -> str:
        """One-line operator summary."""
        return (
            f"recovered generation {self.generation}; "
            f"{len(self.quarantined)} file(s) quarantined, "
            f"{len(self.rejected_generations)} generation(s) rejected"
        )


@dataclass(frozen=True)
class _Manifest:
    """A parsed, checksum-verified manifest file."""

    generation: int
    segments: Tuple[SegmentInfo, ...]
    sidecars: Tuple[SidecarInfo, ...]
    meta: Dict[str, Any]


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _stream_crc32(path: Path) -> int:
    """CRC32 of a file's bytes, streamed (segments can be large)."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                return crc & 0xFFFFFFFF
            crc = zlib.crc32(block, crc)


# ---------------------------------------------------------------------------
# verified-at cache + quarantine plumbing
# ---------------------------------------------------------------------------


class _VerifiedCache:
    """The verified-at cache: per-file stat+CRC facts from a past scan.

    Trust model: an entry is honoured only when the file's current
    mtime_ns+size match the recorded ones *and* the recorded CRC
    equals the CRC the manifest under verification expects.  The cache
    can therefore only ever skip work that a full scan would have
    confirmed — a tampered file changes stat or fails the manifest-CRC
    equality, and a stale cache (e.g. rolled back by a lost fsync)
    causes misses, never false hits, because segment/sidecar names are
    monotonic and never reused.  In-place tampering that forges
    mtime+size is outside the model; ``paranoid=True`` exists for it.
    """

    def __init__(
        self, entries: Optional[Dict[str, List[int]]] = None
    ) -> None:
        #: relpath → [mtime_ns, size, crc32]
        self.entries: Dict[str, List[int]] = dict(entries or {})

    @classmethod
    def load(cls, root: Path) -> Tuple[str, "_VerifiedCache"]:
        """(state, cache) where state ∈ loaded|missing|damaged."""
        path = root / VERIFIED_CACHE_NAME
        if not path.exists():
            return "missing", cls()
        try:
            document = json.loads(path.read_bytes().decode("utf-8"))
            payload = document["payload"]
            encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
            if _crc32(encoded) != document.get("checksum"):
                return "damaged", cls()
            if payload.get("format") != VERIFIED_CACHE_VERSION:
                return "damaged", cls()
            entries = {
                str(rel): [int(v) for v in value]
                for rel, value in payload.get("entries", {}).items()
            }
            for value in entries.values():
                if len(value) != 3:
                    return "damaged", cls()
        except (
            json.JSONDecodeError,
            UnicodeDecodeError,
            KeyError,
            TypeError,
            ValueError,
            OSError,
        ):
            return "damaged", cls()
        return "loaded", cls(entries)

    def fresh(self, path: Path, relative: str, crc32: int) -> bool:
        """True when ``path`` still matches its record *and* ``crc32``."""
        value = self.entries.get(relative)
        if value is None:
            return False
        try:
            stat = path.stat()
        except OSError:
            return False
        return (
            value[0] == stat.st_mtime_ns
            and value[1] == stat.st_size
            and value[2] == crc32
        )

    def encode(self) -> bytes:
        """Self-checksummed document bytes (same envelope as manifests)."""
        payload = {
            "format": VERIFIED_CACHE_VERSION,
            "entries": {
                key: list(value)
                for key, value in sorted(self.entries.items())
            },
        }
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        return json.dumps(
            {"payload": payload, "checksum": _crc32(encoded)},
            sort_keys=True,
            indent=1,
        ).encode("utf-8")


class _QuarantineSink:
    """Collects quarantine decisions; moves files only when writable.

    Read-only opens pass ``quarantine_dir=None``: every decision still
    lands in the report (the caller is told exactly what a writable
    open would have moved), but the directory is left untouched — the
    property that makes concurrent read-only opens safe against a live
    writer's staged-but-uncommitted files.
    """

    def __init__(
        self, quarantine_dir: Optional[Path], report: RecoveryReport
    ) -> None:
        self.quarantine_dir = quarantine_dir
        self.report = report
        #: (name inside quarantine/, entry) for files actually moved.
        self.moved: List[Tuple[str, QuarantineEntry]] = []

    def take(self, path: Path, relative: str, kind: str, detail: str) -> None:
        """Report ``path`` as quarantined; move it if writable."""
        entry = QuarantineEntry(relative, kind, detail)
        self.report.quarantined.append(entry)
        if self.quarantine_dir is None or not path.exists():
            return
        target = _quarantine(path, self.quarantine_dir)
        self.moved.append((target.name, entry))


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class SpillStore:
    """A crash-safe, append-only segment store under one directory.

    Use :meth:`open` (which creates an empty store on a fresh
    directory and runs the recovery scan on an existing one), then
    :meth:`append_segment` / :meth:`write_sidecar` to stage data and
    :meth:`commit` to make a new generation durable.  Uncommitted
    stages are lost on crash — by design: the commit is the
    checkpoint boundary.
    """

    def __init__(
        self,
        directory: Path,
        io_layer: _DurableIo,
        manifest: Optional[_Manifest],
        report: RecoveryReport,
        next_segment: int,
        next_sidecar: int,
        read_only: bool = False,
    ) -> None:
        self.directory = directory
        self.read_only = read_only
        self._io = io_layer
        self._segments: List[SegmentInfo] = (
            list(manifest.segments) if manifest else []
        )
        self._sidecars: Dict[str, SidecarInfo] = {
            _sidecar_kind(s.name): s for s in (manifest.sidecars if manifest else ())
        }
        self.generation = manifest.generation if manifest else 0
        self.meta: Dict[str, Any] = dict(manifest.meta) if manifest else {}
        self.last_recovery = report
        self._next_segment = next_segment
        self._next_sidecar = next_sidecar
        #: Segments staged since the last commit (already on disk,
        #: referenced by no manifest yet).
        self._pending: List[SegmentInfo] = []
        #: Guards the published in-memory view of the store (committed
        #: segment list, staged list, sidecar table, generation, meta)
        #: so readers in other threads never observe a half-applied
        #: commit.  Durable IO happens *before* the lock is taken —
        #: only the in-memory publish of an already-durable state is
        #: guarded, never an fsync or a rename.
        self._lock = threading.Lock()

    # -- opening ------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: PathLike,
        faults: Optional[Any] = None,
        paranoid: bool = False,
        read_only: bool = False,
    ) -> "SpillStore":
        """Open (or initialize) a spill directory, recovering if needed.

        ``paranoid=True`` ignores the verified-at cache and streams
        every referenced byte (the full PR-5 scan).  ``read_only=True``
        opens for serving: nothing is created or moved — damage is
        reported, not quarantined — and every write method raises
        :class:`ConfigError`; the directory must already exist.

        Raises :class:`CorruptArchiveError` when ``directory`` exists
        but is not a spill store (e.g. it is a file, or holds foreign
        content where the layout should be).
        """
        root = Path(directory)
        if root.exists() and not root.is_dir():
            raise CorruptArchiveError(root, "spill path is not a directory")
        if read_only:
            if faults is not None:
                raise ConfigError(
                    "read-only opens perform no writes to inject into"
                )
            if not root.is_dir():
                raise ConfigError(
                    f"read-only open of missing spill directory {root}"
                )
        segments_dir = root / "segments"
        quarantine_dir = root / "quarantine"
        if not read_only:
            segments_dir.mkdir(parents=True, exist_ok=True)
            quarantine_dir.mkdir(parents=True, exist_ok=True)
        io_layer = _DurableIo(faults)
        report = RecoveryReport()
        sink = _QuarantineSink(None if read_only else quarantine_dir, report)
        if paranoid:
            cache: Optional[_VerifiedCache] = None
            report.verified_cache = "paranoid"
        else:
            state, cache = _VerifiedCache.load(root)
            report.verified_cache = state
            if state == "damaged":
                cache = None
                sink.take(
                    root / VERIFIED_CACHE_NAME,
                    VERIFIED_CACHE_NAME,
                    "damaged-cache",
                    "verified-at cache failed its self-checksum; "
                    "fell back to the full scan",
                )
        journal_intents = cls._scan_journal(root, report)
        manifests = cls._scan_manifests(root, sink)
        chosen = cls._choose_generation(root, manifests, sink, report, cache)
        cls._quarantine_strays(
            root,
            segments_dir,
            [manifest for _, manifest in manifests],
            sink,
            journal_intents,
        )
        report.generation = chosen.generation if chosen else 0
        next_segment, next_sidecar = cls._next_counters(root, journal_intents)
        store = cls(
            root,
            io_layer,
            chosen,
            report,
            next_segment,
            next_sidecar,
            read_only=read_only,
        )
        if not read_only:
            store._update_quarantine_index(sink.moved)
            if chosen is not None:
                # Persist what this scan just proved so the next open
                # is O(changed segments).  Skipped on an empty store:
                # there is nothing to record and a fresh directory
                # should stay byte-empty until data arrives.
                store._refresh_verified_cache()
        return store

    @staticmethod
    def _scan_journal(root: Path, report: RecoveryReport) -> List[Dict[str, Any]]:
        """Parse journal.log tolerantly; a torn tail is reported, not fatal."""
        journal = root / "journal.log"
        intents: List[Dict[str, Any]] = []
        if not journal.exists():
            return intents
        raw = journal.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        committed: set = set()
        for index, line in enumerate(lines):
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Only the final record can legitimately be torn; any
                # earlier damage is still just reported — the journal
                # is advisory, manifests/checksums are authoritative.
                report.torn_journal_tail = True
                continue
            if not isinstance(record, dict):
                report.torn_journal_tail = True
                continue
            intents.append(record)
            if record.get("op") == "commit":
                committed.add(int(record.get("generation", -1)))
        for record in intents:
            if (
                record.get("op") == "commit-intent"
                and int(record.get("generation", -1)) not in committed
            ):
                report.unfinished_intents.append(
                    f"commit-intent generation {record.get('generation')}"
                )
        return intents

    @staticmethod
    def _scan_manifests(
        root: Path, sink: _QuarantineSink
    ) -> List[Tuple[Path, _Manifest]]:
        """Load every manifest file, quarantining the unverifiable ones."""
        found: List[Tuple[Path, _Manifest]] = []
        for path in sorted(root.glob("manifest-*.json")):
            if not _MANIFEST_RE.match(path.name):
                continue
            try:
                manifest = _parse_manifest(path.read_bytes())
            except CorruptArchiveError as error:
                sink.take(path, path.name, "torn-manifest", error.detail)
                continue
            found.append((path, manifest))
        found.sort(key=lambda item: item[1].generation)
        return found

    @classmethod
    def _choose_generation(
        cls,
        root: Path,
        manifests: List[Tuple[Path, _Manifest]],
        sink: _QuarantineSink,
        report: RecoveryReport,
        cache: Optional[_VerifiedCache],
    ) -> Optional[_Manifest]:
        """Newest generation whose segments and sidecars all verify.

        A generation that references a damaged file is rejected (the
        damaged file quarantined) and the scan falls back to the next
        older one; segments shared with the survivor are of course
        kept.  ``CURRENT`` is advisory — a lost swap must not hide a
        fully committed newer manifest, and a torn ``CURRENT`` must
        not take the store down.

        With a verified-at ``cache``, a file whose stat record matches
        and whose cached CRC equals *this manifest's* expected CRC
        skips the byte stream (a cache hit); everything else pays the
        full :func:`_verify_segment` / :func:`_verify_sidecar` scan.
        """
        damaged: set = set()
        for path, manifest in reversed(manifests):
            bad: List[Tuple[Path, QuarantineEntry]] = []
            for segment in manifest.segments:
                target = root / "segments" / segment.name
                relative = f"segments/{segment.name}"
                if cache is not None and cache.fresh(
                    target, relative, segment.crc32
                ):
                    report.cache_hits += 1
                    continue
                if target.exists():
                    report.segments_crc_streamed += 1
                problem = _verify_segment(target, segment)
                if problem is not None:
                    bad.append(
                        (
                            target,
                            QuarantineEntry(
                                relative, "damaged-segment", problem
                            ),
                        )
                    )
            for sidecar in manifest.sidecars:
                target = root / sidecar.name
                if cache is not None and cache.fresh(
                    target, sidecar.name, sidecar.crc32
                ):
                    report.cache_hits += 1
                    continue
                problem = _verify_sidecar(target, sidecar)
                if problem is not None:
                    bad.append(
                        (
                            target,
                            QuarantineEntry(
                                sidecar.name, "damaged-sidecar", problem
                            ),
                        )
                    )
            if not bad:
                return manifest
            report.rejected_generations.append(manifest.generation)
            for target, entry in bad:
                if entry.path in damaged:
                    continue
                damaged.add(entry.path)
                sink.take(target, entry.path, entry.kind, entry.detail)
        return None

    @staticmethod
    def _quarantine_strays(
        root: Path,
        segments_dir: Path,
        manifests: List[_Manifest],
        sink: _QuarantineSink,
        journal_intents: List[Dict[str, Any]],
    ) -> None:
        """Move aside temp files and uncommitted segments/sidecars.

        A file referenced by *any* checksum-valid manifest is kept —
        older generations are the fallback chain for future recoveries
        — so only files no committed manifest ever named (uncommitted
        stages from a crashed writer, or retirement debris a lost
        unlink left behind after compaction) are moved aside.
        """
        referenced = {s.name for m in manifests for s in m.segments}
        sidecar_names = {s.name for m in manifests for s in m.sidecars}
        intended = {
            str(record.get("name"))
            for record in journal_intents
            if record.get("op")
            in ("segment-intent", "sidecar-intent", "compact-intent")
        }
        quarantine_dir = root / "quarantine"
        for path in sorted(root.rglob("*.tmp")):
            if quarantine_dir in path.parents:
                continue
            relative = path.relative_to(root).as_posix()
            sink.take(path, relative, "orphan-temp", "interrupted write")
        for path in sorted(segments_dir.glob("seg-*.npy")):
            if path.name in referenced:
                continue
            detail = (
                "journaled intent, never committed"
                if path.name in intended
                else "referenced by no committed manifest"
            )
            sink.take(
                path, f"segments/{path.name}", "orphan-segment", detail
            )
        for path in sorted(root.glob("*.bin")):
            if path.name in sidecar_names:
                continue
            detail = (
                "journaled intent, never committed"
                if path.name in intended
                else "referenced by no committed manifest"
            )
            sink.take(path, path.name, "orphan-sidecar", detail)

    @staticmethod
    def _next_counters(
        root: Path, journal_intents: List[Dict[str, Any]]
    ) -> Tuple[int, int]:
        """Counters strictly above anything ever named, even quarantined."""
        highest_segment = 0
        highest_sidecar = 0
        candidates = [
            path.name
            for path in list(root.rglob("seg-*.npy"))
            + list(root.glob("*.bin"))
            + list((root / "quarantine").glob("*"))
        ]
        candidates.extend(
            str(record.get("name", ""))
            for record in journal_intents
            if record.get("op")
            in ("segment-intent", "sidecar-intent", "compact-intent")
        )
        for name in candidates:
            match = _SEGMENT_RE.match(name)
            if match:
                highest_segment = max(highest_segment, int(match.group(1)))
            match = _SIDECAR_RE.match(name)
            if match:
                highest_sidecar = max(highest_sidecar, int(match.group(1)))
        return highest_segment + 1, highest_sidecar + 1

    # -- reading ------------------------------------------------------------

    def segments(self) -> List[SegmentInfo]:
        """Committed + staged segments, in append order."""
        return list(self._segments) + list(self._pending)

    def row_count(self) -> int:
        """Total rows across committed and staged segments."""
        return sum(info.rows for info in self.segments())

    def mmap_segment(
        self, info: SegmentInfo
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Memory-map one segment as its (ids, times, counts) triple."""
        path = self.directory / "segments" / info.name
        try:
            # The returned row views pin the mmap open for as long as
            # the caller holds them; closing here would invalidate them.
            stacked = np.load(path, mmap_mode="r")  # repro: noqa[REP303]
        except (OSError, ValueError) as error:
            raise CorruptArchiveError(path, f"unreadable segment: {error}")
        if stacked.ndim != 2 or stacked.shape[0] != 3:
            raise CorruptArchiveError(
                path, f"segment has shape {stacked.shape}, expected (3, n)"
            )
        return stacked[0], stacked[1], stacked[2]

    def read_sidecar(self, kind: str) -> Optional[bytes]:
        """The named sidecar's verified bytes (None when absent)."""
        info = self._sidecars.get(kind)
        if info is None:
            return None
        path = self.directory / info.name
        data = path.read_bytes()
        if _crc32(data) != info.crc32:
            raise CorruptArchiveError(path, "sidecar checksum mismatch")
        return data

    # -- writing ------------------------------------------------------------

    def _assert_writable(self, operation: str) -> None:
        if self.read_only:
            raise ConfigError(
                f"store was opened read-only; {operation} writes"
            )

    def append_segment(
        self,
        ids: np.ndarray,
        times: np.ndarray,
        counts: np.ndarray,
        digest: Optional[int] = None,
    ) -> SegmentInfo:
        """Stage one immutable row segment (durable but uncommitted).

        ``digest`` is the caller-computed mergeable row digest (see
        :class:`SegmentInfo`); the store records it in the manifest
        but does not recompute it — rows are the caller's domain.
        """
        self._assert_writable("append_segment()")
        if not (len(ids) == len(times) == len(counts)):
            raise ConfigError("segment columns must have equal length")
        if len(ids) == 0:
            raise ConfigError("cannot spill an empty segment")
        stacked = np.vstack(
            [
                np.ascontiguousarray(ids, dtype=np.int64),
                np.ascontiguousarray(times, dtype=np.int64),
                np.ascontiguousarray(counts, dtype=np.int64),
            ]
        )
        buffer = io.BytesIO()
        np.save(buffer, stacked)
        data = buffer.getvalue()
        name = f"seg-{self._next_segment:07d}.npy"
        self._next_segment += 1
        info = SegmentInfo(
            name=name, rows=len(ids), crc32=_crc32(data), digest=digest
        )
        self._journal(
            {"op": "segment-intent", "name": name, "rows": info.rows}
        )
        path = self.directory / "segments" / name
        self._io.write_atomic(path, data)
        # Read-back verification: the segment is memory-mapped into
        # service immediately, so a write corrupted in flight (a
        # flipped bit, a short write) must be caught *here*, not at
        # the next open.  At-rest rot is still the recovery scan's job.
        written = _stream_crc32(path)
        if written != info.crc32:
            raise CorruptArchiveError(
                path,
                "post-write verification failed "
                f"(expected {info.crc32:#010x}, file {written:#010x})",
            )
        with self._lock:
            self._pending.append(info)
        return info

    def write_sidecar(self, kind: str, data: bytes) -> SidecarInfo:
        """Stage a named auxiliary blob for the next commit."""
        self._assert_writable("write_sidecar()")
        if not kind.isalpha() or not kind.islower():
            raise ConfigError("sidecar kind must be a lowercase word")
        name = f"{kind}-{self._next_sidecar:07d}.bin"
        self._next_sidecar += 1
        info = SidecarInfo(name=name, size=len(data), crc32=_crc32(data))
        self._journal({"op": "sidecar-intent", "name": name})
        path = self.directory / name
        self._io.write_atomic(path, data)
        # Read-back verification, same contract as append_segment: the
        # verified-at cache will record this CRC as *proven*, so a
        # write corrupted in flight must be caught here — before any
        # manifest references it — not trusted until the next full scan.
        written = _crc32(path.read_bytes())
        if written != info.crc32:
            raise CorruptArchiveError(
                path,
                "post-write verification failed "
                f"(expected {info.crc32:#010x}, file {written:#010x})",
            )
        with self._lock:
            self._sidecars[kind] = info
        return info

    def _write_manifest(
        self,
        generation: int,
        segments: List[SegmentInfo],
        meta: Dict[str, Any],
    ) -> str:
        """Write ``manifest-<gen>.json`` atomically; returns its name."""
        payload = {
            "format": SPILL_FORMAT_VERSION,
            "generation": generation,
            "segments": [s.to_json() for s in segments],
            "sidecars": [
                self._sidecars[kind].to_json()
                for kind in sorted(self._sidecars)
            ],
            "meta": dict(meta),
        }
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        document = json.dumps(
            {"payload": payload, "checksum": _crc32(encoded)},
            sort_keys=True,
            indent=1,
        ).encode("utf-8")
        name = f"manifest-{generation:07d}.json"
        self._io.write_atomic(self.directory / name, document)
        return name

    def commit(self, meta: Optional[Dict[str, Any]] = None) -> int:
        """Make everything staged durable as a new generation.

        Returns the committed generation number.  The manifest lands
        via tmp+fsync+rename, then ``CURRENT`` swings to it — a crash
        between the two leaves a fully valid manifest that recovery
        still prefers (``CURRENT`` is advisory).
        """
        self._assert_writable("commit()")
        generation = self.generation + 1
        segments = list(self._segments) + list(self._pending)
        self._journal(
            {
                "op": "commit-intent",
                "generation": generation,
                "segments": [s.name for s in self._pending],
            }
        )
        name = self._write_manifest(generation, segments, dict(meta or {}))
        self._io.write_atomic(
            self.directory / "CURRENT", (name + "\n").encode()
        )
        self._journal({"op": "commit", "generation": generation})
        with self._lock:
            self.generation = generation
            self._segments = segments
            self._pending = []
            self.meta = dict(meta or {})
        self._refresh_verified_cache()
        return generation

    def compact(self, min_segments: int = 2) -> Optional[int]:
        """Merge every committed segment into one superseding generation.

        The log-structured reclaim step.  Protocol, every arrow its
        own durability boundary:

        1. journal a ``compact-intent`` naming the merged segment and
           its inputs;
        2. write the merged segment (tmp+fsync+rename+dirsync) and
           CRC-verify it by read-back;
        3. journal a ``commit-intent``, write the superseding manifest
           (referencing *only* the merged segment), and **read it back
           through the full parse+checksum path** — retirement must
           never start on the strength of a manifest that does not
           verify on disk (a bit-flipped manifest write survives the
           writer; deleting the old generation under it would be
           silent data loss);
        4. swap ``CURRENT``, journal ``commit``;
        5. retire superseded files — old manifests first, then
           unreferenced segments, then unreferenced sidecars, each
           batch followed by a dirsync.

        A crash before step 4's journal line recovers the *old*
        generation (the merged segment is quarantined as an orphan); a
        crash during step 5 recovers the *new* generation with some
        already-unreferenced debris for the next open to quarantine.
        Either way the recovered store verifies in full — never a mix.

        Returns the new generation, or ``None`` when fewer than
        ``min_segments`` committed segments exist.  Staged-but-
        uncommitted segments must be committed first.
        """
        self._assert_writable("compact()")
        if min_segments < 2:
            raise ConfigError("min_segments must be at least 2")
        if self._pending:
            raise ConfigError(
                "commit staged segments before compacting"
            )
        if len(self._segments) < min_segments:
            return None
        inputs = list(self._segments)
        columns = [self.mmap_segment(info) for info in inputs]
        stacked = np.vstack(
            [
                np.concatenate([c[0] for c in columns]),
                np.concatenate([c[1] for c in columns]),
                np.concatenate([c[2] for c in columns]),
            ]
        )
        buffer = io.BytesIO()
        np.save(buffer, stacked)
        data = buffer.getvalue()
        name = f"seg-{self._next_segment:07d}.npy"
        self._next_segment += 1
        digest: Optional[int] = 0
        for info in inputs:
            if info.digest is None:
                digest = None
                break
            digest = (digest + info.digest) & DIGEST_MASK
        merged = SegmentInfo(
            name=name,
            rows=int(stacked.shape[1]),
            crc32=_crc32(data),
            digest=digest,
        )
        generation = self.generation + 1
        self._journal(
            {
                "op": "compact-intent",
                "generation": generation,
                "name": name,
                "inputs": [info.name for info in inputs],
            }
        )
        path = self.directory / "segments" / name
        self._io.write_atomic(path, data)
        written = _stream_crc32(path)
        if written != merged.crc32:
            raise CorruptArchiveError(
                path,
                "post-write verification of merged segment failed "
                f"(expected {merged.crc32:#010x}, file {written:#010x})",
            )
        meta = dict(self.meta)
        meta["compacted"] = {
            "inputs": [info.name for info in inputs],
            "merged": name,
            "superseded_generation": self.generation,
        }
        self._journal(
            {
                "op": "commit-intent",
                "generation": generation,
                "segments": [name],
            }
        )
        manifest_name = self._write_manifest(generation, [merged], meta)
        parsed = _parse_manifest(
            (self.directory / manifest_name).read_bytes()
        )
        if parsed.generation != generation or [
            s.name for s in parsed.segments
        ] != [name]:
            raise CorruptArchiveError(
                self.directory / manifest_name,
                "superseding manifest does not verify on read-back; "
                "aborting compaction with the old generation intact",
            )
        self._io.write_atomic(
            self.directory / "CURRENT", (manifest_name + "\n").encode()
        )
        self._journal({"op": "commit", "generation": generation})
        with self._lock:
            self.generation = generation
            self._segments = [merged]
            self.meta = meta
        retired = self._retire_superseded()
        self._journal(
            {"op": "retired", "generation": generation, "files": retired}
        )
        self._refresh_verified_cache()
        return generation

    def _retire_superseded(self) -> List[str]:
        """Delete files the committed manifest no longer references.

        Order matters for the supersession invariant: superseded
        *manifests* go first (with a dirsync), so no surviving
        manifest can ever reference a file deleted later in the same
        pass.  A crash anywhere in here leaves extra-but-unreferenced
        files that the next open quarantines as orphans — harmless
        debris, reclaimed by :meth:`purge_quarantine` — never a
        manifest pointing at a hole.
        """
        keep_manifest = f"manifest-{self.generation:07d}.json"
        keep_segments = {info.name for info in self._segments}
        keep_sidecars = {info.name for info in self._sidecars.values()}
        removed: List[str] = []
        manifests = [
            path
            for path in sorted(self.directory.glob("manifest-*.json"))
            if _MANIFEST_RE.match(path.name) and path.name != keep_manifest
        ]
        for path in manifests:
            self._io.unlink(path)
            removed.append(path.name)
        if manifests:
            self._io.sync_directory(self.directory)
        segments = [
            path
            for path in sorted((self.directory / "segments").glob("seg-*.npy"))
            if path.name not in keep_segments
        ]
        for path in segments:
            self._io.unlink(path)
            removed.append(f"segments/{path.name}")
        if segments:
            self._io.sync_directory(self.directory / "segments")
        sidecars = [
            path
            for path in sorted(self.directory.glob("*.bin"))
            if path.name not in keep_sidecars
        ]
        for path in sidecars:
            self._io.unlink(path)
            removed.append(path.name)
        if sidecars:
            self._io.sync_directory(self.directory)
        return removed

    def _refresh_verified_cache(self) -> None:
        """Record stat+CRC facts for every live file (atomic write).

        Advisory by design: any failure to record (a racing stat, an
        injected crash) only costs the next open a full scan, so a
        missing file here is simply skipped — the recovery scan is
        the authority on whether it matters.
        """
        cache = _VerifiedCache()
        for info in self._segments:
            path = self.directory / "segments" / info.name
            try:
                stat = path.stat()
            except OSError:
                continue
            cache.entries[f"segments/{info.name}"] = [
                stat.st_mtime_ns,
                stat.st_size,
                info.crc32,
            ]
        for sidecar in self._sidecars.values():
            path = self.directory / sidecar.name
            try:
                stat = path.stat()
            except OSError:
                continue
            cache.entries[sidecar.name] = [
                stat.st_mtime_ns,
                stat.st_size,
                sidecar.crc32,
            ]
        self._io.write_atomic(
            self.directory / VERIFIED_CACHE_NAME, cache.encode()
        )

    def _journal(self, record: Dict[str, Any]) -> None:
        self._io.append_line(
            self.directory / "journal.log", json.dumps(record, sort_keys=True)
        )

    # -- quarantine reclamation ---------------------------------------------

    def _load_quarantine_index(self) -> Dict[str, Dict[str, Any]]:
        """Typed retention records, keyed by name inside quarantine/."""
        path = self.directory / "quarantine" / QUARANTINE_INDEX_NAME
        if not path.exists():
            return {}
        try:
            document = json.loads(path.read_bytes().decode("utf-8"))
            payload = document["payload"]
            encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
            if _crc32(encoded) != document.get("checksum"):
                return {}
            return {
                str(key): dict(value)
                for key, value in payload.get("entries", {}).items()
            }
        except (
            json.JSONDecodeError,
            UnicodeDecodeError,
            KeyError,
            TypeError,
            ValueError,
            OSError,
        ):
            # A damaged index loses the *labels*, never the evidence:
            # the files stay, listed with kind "unknown".
            return {}

    def _write_quarantine_index(
        self, entries: Dict[str, Dict[str, Any]]
    ) -> None:
        payload = {
            "format": 1,
            "entries": {key: entries[key] for key in sorted(entries)},
        }
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        document = json.dumps(
            {"payload": payload, "checksum": _crc32(encoded)},
            sort_keys=True,
            indent=1,
        ).encode("utf-8")
        self._io.write_atomic(
            self.directory / "quarantine" / QUARANTINE_INDEX_NAME, document
        )

    def _update_quarantine_index(
        self, moved: List[Tuple[str, QuarantineEntry]]
    ) -> None:
        """Fold this open's moves into the index; prune gone files."""
        quarantine_dir = self.directory / "quarantine"
        entries = self._load_quarantine_index()
        pruned = {
            key: value
            for key, value in entries.items()
            if (quarantine_dir / key).exists()
        }
        changed = len(pruned) != len(entries)
        for target_name, entry in moved:
            pruned[target_name] = {
                "kind": entry.kind,
                "detail": entry.detail,
                "generation": self.last_recovery.generation,
            }
            changed = True
        if changed:
            self._write_quarantine_index(pruned)

    def quarantine_entries(self) -> List[QuarantineEntry]:
        """What sits in ``quarantine/`` right now, with typed labels.

        ``path`` is the file's current name inside ``quarantine/``;
        files that predate the index (or whose index was lost) are
        listed with kind ``unknown`` rather than hidden.
        """
        quarantine_dir = self.directory / "quarantine"
        if not quarantine_dir.is_dir():
            return []
        index = self._load_quarantine_index()
        entries: List[QuarantineEntry] = []
        for path in sorted(quarantine_dir.iterdir()):
            if path.name == QUARANTINE_INDEX_NAME or path.is_dir():
                continue
            record = index.get(path.name)
            if record is None:
                entries.append(
                    QuarantineEntry(
                        path.name, "unknown", "predates the quarantine index"
                    )
                )
            else:
                entries.append(
                    QuarantineEntry(
                        path.name,
                        str(record.get("kind", "unknown")),
                        str(record.get("detail", "")),
                        int(record.get("generation", 0)),
                    )
                )
        return entries

    def purge_quarantine(
        self,
        kinds: Optional[Any] = None,
        before_generation: Optional[int] = None,
    ) -> Tuple[int, int]:
        """Reclaim quarantined debris; returns (files removed, bytes).

        Typed retention: ``kinds`` restricts the purge to those entry
        kinds (e.g. only ``orphan-segment`` debris from compaction,
        keeping damaged-file evidence); ``before_generation`` keeps
        anything quarantined at or after that store generation.  With
        neither, everything goes.  Removals run through the injectable
        ``unlink`` boundary like any other durable mutation.
        """
        self._assert_writable("purge_quarantine()")
        wanted = set(kinds) if kinds is not None else None
        quarantine_dir = self.directory / "quarantine"
        index = self._load_quarantine_index()
        removed = 0
        freed = 0
        for entry in self.quarantine_entries():
            if wanted is not None and entry.kind not in wanted:
                continue
            if (
                before_generation is not None
                and entry.generation >= before_generation
            ):
                continue
            path = quarantine_dir / entry.path
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            self._io.unlink(path)
            index.pop(entry.path, None)
            removed += 1
            freed += size
        if removed:
            self._write_quarantine_index(index)
            self._io.sync_directory(quarantine_dir)
        return removed, freed


def _sidecar_kind(name: str) -> str:
    return name.split("-", 1)[0]


def _quarantine(path: Path, quarantine_dir: Path) -> Path:
    """Move a damaged/orphaned file aside (never delete evidence)."""
    target = quarantine_dir / path.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = quarantine_dir / f"{path.name}.{suffix}"
    os.replace(path, target)
    return target


def _parse_manifest(data: bytes) -> _Manifest:
    """Decode + checksum-verify one manifest document."""
    try:
        document = json.loads(data.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CorruptArchiveError("<manifest>", f"unparseable JSON: {error}")
    if not isinstance(document, dict) or "payload" not in document:
        raise CorruptArchiveError("<manifest>", "missing payload envelope")
    payload = document["payload"]
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    if _crc32(encoded) != document.get("checksum"):
        raise CorruptArchiveError("<manifest>", "manifest checksum mismatch")
    if payload.get("format") != SPILL_FORMAT_VERSION:
        raise CorruptArchiveError(
            "<manifest>", f"unsupported spill format {payload.get('format')}"
        )
    return _Manifest(
        generation=int(payload["generation"]),
        segments=tuple(
            SegmentInfo.from_json(item) for item in payload["segments"]
        ),
        sidecars=tuple(
            SidecarInfo.from_json(item) for item in payload.get("sidecars", [])
        ),
        meta=dict(payload.get("meta", {})),
    )


def _stored_shape(path: Path) -> Tuple[int, ...]:
    """The array shape recorded in a ``.npy`` file's header.

    Verification only needs the geometry, and the header carries it;
    reading it directly avoids mapping the whole payload and leaves no
    OS handle behind once the ``with`` block exits (a memmap opened
    just to inspect ``.shape`` would linger until garbage collection).
    """
    with open(path, "rb") as handle:
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, _, _ = np.lib.format.read_array_header_1_0(handle)
        else:
            shape, _, _ = np.lib.format.read_array_header_2_0(handle)
    return shape


def _verify_segment(path: Path, info: SegmentInfo) -> Optional[str]:
    """None when the segment file is intact, else the failure detail."""
    if not path.exists():
        return "segment file missing"
    crc = _stream_crc32(path)
    if crc != info.crc32:
        return f"checksum mismatch (manifest {info.crc32:#010x}, file {crc:#010x})"
    try:
        shape = _stored_shape(path)
    except (OSError, ValueError) as error:
        return f"unreadable npy: {error}"
    if len(shape) != 2 or shape[0] != 3 or shape[1] != info.rows:
        return f"shape {shape} does not match manifest rows {info.rows}"
    return None


def _verify_sidecar(path: Path, info: SidecarInfo) -> Optional[str]:
    """None when the sidecar file is intact, else the failure detail."""
    if not path.exists():
        return "sidecar file missing"
    data = path.read_bytes()
    if len(data) != info.size:
        return f"size {len(data)} does not match manifest size {info.size}"
    crc = _crc32(data)
    if crc != info.crc32:
        return f"checksum mismatch (manifest {info.crc32:#010x}, file {crc:#010x})"
    return None
