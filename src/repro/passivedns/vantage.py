"""Multi-vantage collection (§3.1's caching argument, made testable).

Farsight's feed aggregates sensors at *many* resolvers.  The paper
argues DNS caching therefore doesn't significantly distort NXDomain
volume: each resolver's negative cache suppresses only that resolver's
repeat queries, and a domain polled by clients behind many resolvers
is observed once per resolver per negative-TTL window rather than once
globally.

:class:`MultiVantageCollector` builds N sensor-tapped resolvers over
one shared authoritative hierarchy and routes a client population
across them, so the suppression-vs-vantage-count relationship can be
measured instead of asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.dns.hierarchy import DnsHierarchy
from repro.dns.message import RRType
from repro.dns.name import DomainName
from repro.dns.resolver import ResolutionResult
from repro.dns.tld import TldRegistry
from repro.passivedns.channel import SieChannel
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.sensor import Sensor, SensorTappedResolver
from repro.errors import ConfigError


@dataclass
class VantageStats:
    """What one collection run observed."""

    vantage_points: int
    client_queries: int
    channel_observations: int

    @property
    def suppression(self) -> float:
        """Fraction of client queries invisible to the channel."""
        if self.client_queries == 0:
            return 0.0
        return 1.0 - self.channel_observations / self.client_queries


class MultiVantageCollector:
    """N resolvers, N sensors, one channel, one database.

    Clients are assigned to vantage points by a stable hash of their
    identifier — the "users sit behind their ISP's resolver" model —
    so moving to more vantage points re-partitions the same query
    stream rather than changing it.
    """

    def __init__(
        self,
        vantage_points: int,
        hierarchy: Optional[DnsHierarchy] = None,
        use_negative_cache: bool = True,
    ) -> None:
        if vantage_points < 1:
            raise ConfigError("need at least one vantage point")
        self.hierarchy = (
            hierarchy
            if hierarchy is not None
            else DnsHierarchy.build(TldRegistry.default())
        )
        self.channel = SieChannel()
        self.database = PassiveDnsDatabase()
        self.channel.subscribe(self.database.ingest)
        self._resolvers: List[SensorTappedResolver] = [
            SensorTappedResolver(
                self.hierarchy.make_recursive_resolver(
                    use_negative_cache=use_negative_cache
                ),
                Sensor(f"vantage-{index}", self.channel),
            )
            for index in range(vantage_points)
        ]
        self.client_queries = 0

    @property
    def vantage_points(self) -> int:
        return len(self._resolvers)

    def resolver_for(self, client_id: int) -> SensorTappedResolver:
        """The vantage point serving ``client_id`` (stable assignment)."""
        return self._resolvers[client_id % len(self._resolvers)]

    def query(
        self, client_id: int, qname: DomainName, now: int, rtype: RRType = RRType.A
    ) -> ResolutionResult:
        """One client query through its assigned vantage point."""
        self.client_queries += 1
        return self.resolver_for(client_id).resolve(qname, now, rtype)

    def stats(self) -> VantageStats:
        return VantageStats(
            vantage_points=self.vantage_points,
            client_queries=self.client_queries,
            channel_observations=self.channel.published,
        )


def replay_clients(
    collector: MultiVantageCollector,
    rng: np.random.Generator,
    clients: int = 60,
    queries: int = 2_000,
    nx_pool: int = 40,
    query_interval: int = 30,
) -> VantageStats:
    """Replay a Zipf client/domain query stream through a collector.

    The stream is derived from ``rng`` so two collectors replaying with
    identically seeded generators see the same queries — only the
    vantage partitioning differs.
    """
    names = [DomainName(f"popular-nx-{i}.com") for i in range(nx_pool)]
    now = 0
    for _ in range(queries):
        now += int(rng.integers(1, query_interval))
        client = int(rng.integers(0, clients))
        domain = names[min(int(rng.pareto(1.0)), nx_pool - 1)]
        collector.query(client, domain, now=now)
    return collector.stats()
