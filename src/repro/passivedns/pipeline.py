"""The resilient ingestion pipeline: sensor stream → channel → store.

This module wires the fault harness (:mod:`repro.faults`) and the
resilience primitives (:mod:`repro.resilience`) into the passive DNS
stack.  One :class:`ResilientIngestPipeline` owns a filtered
:class:`~repro.passivedns.channel.SieChannel`, a deduplicating
:class:`~repro.passivedns.database.PassiveDnsDatabase`, a bounded
dead-letter queue, and — optionally — a
:class:`~repro.faults.plan.FaultSchedule` that injects sensor drops,
burst floods, duplicate and out-of-order delivery, subscriber crashes,
and transient store failures along the way.

Guarantees:

- with no schedule (or a null plan) the output store is byte-identical
  to feeding the observations straight into a plain database;
- every fault decision comes from the schedule's seeded streams, so a
  (plan, seed, stream) triple reproduces bit-identically;
- transient store failures never lose data: retries, then dead-letter
  replay, recover every observation the drop injector did not claim;
- long ingests can checkpoint to disk and resume, fast-forwarding the
  schedule's RNG streams to continue the interrupted trajectory;
- with ``spill_dir=`` the store is backed by the crash-safe
  :class:`~repro.passivedns.spill.SpillStore` and each checkpoint is a
  manifest-generation commit — an injected crash at any write boundary
  rolls back to the last committed generation on resume, never to a
  torn archive; once a checkpoint leaves ``spill_compact_threshold``
  segments on disk the commit also compacts them into one superseding
  generation, so long ingests never accumulate unbounded segments.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.clock import SimClock
from repro.dns.name import DomainName
from repro.errors import ConfigError, TransientStoreError
from repro.faults.plan import FaultSchedule
from repro.passivedns.channel import DeliveryErrorPolicy, SieChannel
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.io import PathLike, load_checkpoint, save_checkpoint
from repro.passivedns.record import DnsObservation
from repro.rand import derive_seed, make_rng
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.dlq import DeadLetterQueue, ReplayStats
from repro.resilience.retry import RetryPolicy

#: Store-write retry posture: four attempts absorb transient failure
#: rates well past the sweep's 10% point (residual miss rate r**4),
#: and whatever still slips through is recovered by dead-letter replay.
DEFAULT_RETRY_POLICY = RetryPolicy(
    max_attempts=4, base_delay=1.0, multiplier=2.0, max_delay=30.0, jitter=0.1
)


@dataclass
class PipelineStats:
    """Operator-facing counters for one pipeline's lifetime."""

    offered: int = 0
    delivered: int = 0
    dropped: int = 0
    burst_amplified: int = 0
    duplicates_delivered: int = 0
    store_retries: int = 0
    store_failures: int = 0
    replay_recovered: int = 0
    checkpoints: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Plain-int view (the checkpoint ``extra`` payload)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "PipelineStats":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: int(v) for k, v in payload.items() if k in names})


class ResilientIngestPipeline:
    """A fault-absorbing channel-to-store pipeline.

    Feed observations through :meth:`ingest` (or :meth:`ingest_many`),
    then call :meth:`finish` to flush the reorder buffer and replay the
    dead-letter queue.  The resulting store is ``pipeline.database``.
    """

    def __init__(
        self,
        schedule: Optional[FaultSchedule] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        dead_letter_capacity: int = 8192,
        deduplicate: bool = True,
        clock: Optional[SimClock] = None,
        checkpoint_dir: Optional[PathLike] = None,
        checkpoint_every: int = 0,
        spill_dir: Optional[PathLike] = None,
        spill_faults: Optional[object] = None,
        spill_compact_threshold: int = 16,
        fast_lane: bool = True,
    ) -> None:
        if checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be non-negative")
        if checkpoint_every > 0 and checkpoint_dir is None and spill_dir is None:
            raise ConfigError("checkpoint_every requires a checkpoint_dir")
        if spill_dir is not None:
            # A spill-backed store checkpoints into its own directory:
            # a manifest-generation commit *is* the checkpoint, so a
            # second target would split the durability state in two.
            if checkpoint_dir is not None and str(checkpoint_dir) != str(
                spill_dir
            ):
                raise ConfigError(
                    "spill_dir and checkpoint_dir must agree when both set"
                )
            checkpoint_dir = spill_dir
        self.schedule = schedule
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        self.breaker = breaker
        self.clock = clock
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.stats = PipelineStats()
        self.dead_letters = DeadLetterQueue(capacity=dead_letter_capacity)
        self.spill_compact_threshold = spill_compact_threshold
        self.database = PassiveDnsDatabase(
            deduplicate=deduplicate,
            spill_dir=spill_dir,
            spill_faults=spill_faults,
            spill_compact_threshold=spill_compact_threshold,
        )
        #: Batch fast lane: clean stretches between fault points run
        #: admission control at arrival order but defer the row
        #: appends into a pending batch that lands via ``add_batch``
        #: at the next flush/checkpoint — vectorizing the per-row
        #: store work without moving any fault, dedup, or checkpoint
        #: boundary (see ``_flush_pending`` for the identity argument).
        self.fast_lane = fast_lane
        self._pending_domains: List[DomainName] = []
        self._pending_times: List[int] = []
        self._pending_counts: List[int] = []
        self.channel = SieChannel(
            error_policy=DeliveryErrorPolicy.DEAD_LETTER,
            dead_letters=self.dead_letters,
        )
        self.channel.subscribe(self._store)
        # Jitter for store-write backoff comes from its own derived
        # stream so retry timing never perturbs injector decisions.
        self._retry_rng = (
            make_rng(derive_seed(schedule.seed, "retry-jitter"))
            if schedule is not None
            else None
        )
        if schedule is not None and schedule.plan.subscriber_crash_rate > 0:
            # A crashing analysis tap exercises fan-out isolation and
            # the dead-letter path without touching the store.
            self.channel.subscribe(
                schedule.crash.wrap(self._tap, context="analysis-tap")
            )

    # -- ingest path -------------------------------------------------------

    def ingest(self, observation: DnsObservation) -> int:
        """Offer one observation; returns deliveries into the channel."""
        self.stats.offered += 1
        delivered = self._apply_faults(observation)
        if (
            self.checkpoint_every > 0
            and self.stats.offered % self.checkpoint_every == 0
        ):
            self.checkpoint()
        return delivered

    def ingest_many(self, observations: Iterable[DnsObservation]) -> int:
        """Offer a whole stream; returns total channel deliveries."""
        return sum(self.ingest(observation) for observation in observations)

    def _apply_faults(self, observation: DnsObservation) -> int:
        if self.schedule is None:
            self.channel.publish(observation)
            self.stats.delivered += 1
            return 1
        factor = self.schedule.burst.factor(observation.timestamp)
        if factor > 1:
            observation = dataclasses.replace(
                observation, count=observation.count * factor
            )
            self.stats.burst_amplified += 1
        if self.schedule.drop.should_drop(observation.timestamp):
            self.stats.dropped += 1
            return 0
        copies = self.schedule.duplicate.copies(observation.timestamp)
        if copies > 1:
            self.stats.duplicates_delivered += copies - 1
        delivered = 0
        for _ in range(copies):
            for released in self.schedule.reorder.push(observation):
                self.channel.publish(released)
                delivered += 1
        self.stats.delivered += delivered
        return delivered

    # -- channel subscribers -----------------------------------------------

    def _store(self, observation: DnsObservation) -> None:
        def attempt() -> None:
            if self.schedule is not None:
                self.schedule.store.check(str(observation.qname))
            if self.fast_lane:
                # The store-fault check above already ran for this
                # attempt, so a buffered append can no longer fail —
                # admission (NXDomain filter + dedup window) happens
                # now, at arrival order, exactly as ingest() would.
                if self.database.admit(observation):
                    self._pending_domains.append(
                        observation.registered_domain
                    )
                    self._pending_times.append(observation.timestamp)
                    self._pending_counts.append(observation.count)
            else:
                self.database.ingest(observation)

        def count_retry(attempt_index: int, error: BaseException) -> None:
            self.stats.store_retries += 1

        def run() -> None:
            self.retry_policy.run(
                attempt,
                clock=self.clock,
                rng=self._retry_rng,
                on_retry=count_retry,
            )

        try:
            if self.breaker is not None:
                self.breaker.call(run, now=observation.timestamp)
            else:
                run()
        except TransientStoreError:
            self.stats.store_failures += 1
            raise

    def _tap(self, observation: DnsObservation) -> None:
        """The no-op analysis tap the crash injector wraps."""

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> int:
        """Release and deliver whatever the reorder buffer still holds."""
        released = 0
        if self.schedule is not None:
            for observation in self.schedule.reorder.flush():
                self.channel.publish(observation)
                released += 1
            self.stats.delivered += released
        # Reorder releases above feed _store and may extend the
        # pending batch; landing it last keeps insertion order equal
        # to the record-at-a-time path.
        self._flush_pending()
        return released

    def _flush_pending(self) -> int:
        """Land the fast lane's pending batch via ``add_batch``.

        Identity with the record-at-a-time path: admission (NXDomain
        filter, dedup window, ``duplicates_suppressed``) already ran
        per observation at arrival order inside ``_store``; the rows
        buffered here are exactly the ones ``ingest`` would have
        appended, in the same order.  ``intern_many`` assigns new ids
        in first-appearance order and ``add_batch``'s scatter min/max/
        sum reductions equal the sequential per-row updates, so the
        resulting store — fingerprint, digest, profiles, intern order —
        is identical; only chunk-seal timing moves, which no content
        hash observes.
        """
        if not self._pending_domains:
            return 0
        landed = len(self._pending_domains)
        ids = self.database.intern_many(self._pending_domains)
        self.database.add_batch(
            ids,
            np.asarray(self._pending_times, dtype=np.int64),
            np.asarray(self._pending_counts, dtype=np.int64),
        )
        self._pending_domains = []
        self._pending_times = []
        self._pending_counts = []
        return landed

    def replay_dead_letters(self) -> ReplayStats:
        """Re-ingest quarantined observations (idempotent via dedup)."""
        # Land the pending batch first so replayed rows append after
        # the arrival-ordered ones, as they do on the record path.
        self._flush_pending()
        replay = self.dead_letters.replay(self.database.ingest)
        self.stats.replay_recovered += replay.succeeded
        return replay

    def finish(self) -> PipelineStats:
        """Flush, replay dead letters, take a final checkpoint.

        A spill-backed pipeline always checkpoints here even when
        periodic checkpoints are off: the final manifest-generation
        commit is what makes the ingested store durable at all.
        """
        self.flush()
        self.replay_dead_letters()
        if self.checkpoint_dir is not None and (
            self.checkpoint_every > 0 or self.database.spill is not None
        ):
            self.checkpoint()
        return self.stats

    # -- checkpoint / resume -------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot the pipeline so :meth:`resume` can continue it.

        The reorder buffer is flushed and the dead-letter queue
        replayed first, so the snapshot is self-contained: every
        observation offered before the cursor is either stored or
        deliberately dropped.
        """
        if self.checkpoint_dir is None:
            raise ConfigError("pipeline was built without a checkpoint_dir")
        self.flush()
        self.replay_dead_letters()
        save_checkpoint(
            self.database,
            self.checkpoint_dir,
            cursor=self.stats.offered,
            injector_counters=(
                self.schedule.counters() if self.schedule is not None else {}
            ),
            extra=self.stats.to_dict(),
        )
        self.stats.checkpoints += 1

    def resume(self) -> int:
        """Reload the latest checkpoint, if any; returns the cursor.

        The caller should skip that many leading source events before
        feeding the rest through :meth:`ingest`.
        """
        if self.checkpoint_dir is None:
            raise ConfigError("pipeline was built without a checkpoint_dir")
        state = load_checkpoint(
            self.checkpoint_dir,
            spill_compact_threshold=(
                self.spill_compact_threshold
                if self.database.spill is not None
                else 0
            ),
        )
        if state is None:
            return 0
        # Pending fast-lane rows belong to the abandoned trajectory
        # (every checkpoint flushes before snapshotting, so a loaded
        # cursor never covers them).
        self._pending_domains = []
        self._pending_times = []
        self._pending_counts = []
        self.database = state.database
        if self.schedule is not None:
            self.schedule.fast_forward(state.injector_counters)
        self.stats = PipelineStats.from_dict(state.extra)
        self.stats.offered = state.cursor
        return state.cursor
