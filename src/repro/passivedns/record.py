"""Observation schema of the NXDomain channel.

One :class:`DnsObservation` is what a sensor emits after watching a
response on the wire: the queried name, when, from which vantage
point, and — because high-volume pipelines aggregate at the edge — an
observation ``count`` (sensors batch identical (name, rcode) tuples
within a reporting interval, which is also how SIE keeps volume sane).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.dns.message import RCode, RRType
from repro.dns.name import DomainName
from repro.errors import ConfigError


@dataclass(frozen=True)
class DnsObservation:
    """One (possibly pre-aggregated) response observation."""

    qname: DomainName
    rcode: RCode
    timestamp: int
    sensor_id: str = "sensor-0"
    rtype: RRType = RRType.A
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError("observation count must be at least 1")
        if self.timestamp < 0:
            raise ConfigError("timestamp must be non-negative")

    @property
    def is_nxdomain(self) -> bool:
        return self.rcode == RCode.NXDOMAIN

    @property
    def registered_domain(self) -> DomainName:
        """The registrable (SLD) projection the study operates on."""
        return self.qname.registered_domain()

    @property
    def observation_key(self) -> Tuple[str, str, int, int, int, int]:
        """A hashable identity for idempotent ingestion.

        Two deliveries of the *same* sensed event (same sensor,
        name, type, outcome, reporting interval, and pre-aggregated
        count) share a key, so a deduplicating store can drop the
        at-least-once redelivery without collapsing genuinely
        distinct observations.
        """
        return (
            self.sensor_id,
            str(self.qname),
            int(self.rcode),
            int(self.rtype),
            self.timestamp,
            self.count,
        )
