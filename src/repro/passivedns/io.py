"""Persistence for the passive DNS database.

An 8-year trace takes tens of seconds to generate; analyses over it
take milliseconds.  Saving the columnar store lets a generated trace
be reused across sessions (and shipped as a dataset artifact).  The
format is a single compressed ``.npz``: the interned domain table as a
string array, the per-domain aggregates, and the three row columns.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.dns.name import DomainName
from repro.passivedns.database import PassiveDnsDatabase
from repro.errors import ConfigError

FORMAT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


def save_database(db: PassiveDnsDatabase, path: PathLike) -> None:
    """Write the store to ``path`` (.npz, compressed)."""
    domain_ids, times, counts = db._columns()  # noqa: SLF001 - same package
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        domains=np.asarray([str(d) for d in db.all_domains()], dtype=object),
        first_seen=np.asarray(db._first_seen, dtype=np.int64),
        last_seen=np.asarray(db._last_seen, dtype=np.int64),
        totals=np.asarray(db._totals, dtype=np.int64),
        row_domain=domain_ids,
        row_time=times,
        row_count=counts,
    )


def load_database(path: PathLike) -> PassiveDnsDatabase:
    """Read a store written by :func:`save_database`."""
    with np.load(path, allow_pickle=True) as archive:
        version = int(archive["version"])
        if version != FORMAT_VERSION:
            raise ConfigError(
                f"unsupported passive-DNS archive version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        db = PassiveDnsDatabase()
        db._domains = [DomainName(str(d)) for d in archive["domains"]]
        db._id_of = {domain: i for i, domain in enumerate(db._domains)}
        db._first_seen = [int(v) for v in archive["first_seen"]]
        db._last_seen = [int(v) for v in archive["last_seen"]]
        db._totals = [int(v) for v in archive["totals"]]
        db._row_domain = [int(v) for v in archive["row_domain"]]
        db._row_time = [int(v) for v in archive["row_time"]]
        db._row_count = [int(v) for v in archive["row_count"]]
        db._frozen = None
    _validate(db)
    return db


def _validate(db: PassiveDnsDatabase) -> None:
    n = len(db._domains)
    if not (len(db._first_seen) == len(db._last_seen) == len(db._totals) == n):
        raise ConfigError("corrupt archive: aggregate column lengths differ")
    if not (
        len(db._row_domain) == len(db._row_time) == len(db._row_count)
    ):
        raise ConfigError("corrupt archive: row column lengths differ")
    if db._row_domain and max(db._row_domain) >= n:
        raise ConfigError("corrupt archive: row references unknown domain id")
