"""Persistence for the passive DNS database.

An 8-year trace takes tens of seconds to generate; analyses over it
take milliseconds.  Saving the columnar store lets a generated trace
be reused across sessions (and shipped as a dataset artifact).  The
format is a single compressed ``.npz``: the interned domain table as a
string array, the per-domain aggregates, and the three row columns.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.dns.name import DomainName
from repro.passivedns.database import PassiveDnsDatabase
from repro.errors import ConfigError

FORMAT_VERSION = 1
CHECKPOINT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


def save_database(db: PassiveDnsDatabase, path: PathLike) -> None:
    """Write the store to ``path`` (.npz, compressed)."""
    domain_ids, times, counts = db._columns()  # noqa: SLF001 - same package
    first_seen, last_seen, totals = db._aggregate_columns()  # noqa: SLF001
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        domains=np.asarray([str(d) for d in db.all_domains()], dtype=object),
        first_seen=first_seen,
        last_seen=last_seen,
        totals=totals,
        row_domain=domain_ids,
        row_time=times,
        row_count=counts,
    )


def load_database(path: PathLike) -> PassiveDnsDatabase:
    """Read a store written by :func:`save_database`."""
    with np.load(path, allow_pickle=True) as archive:
        version = int(archive["version"])
        if version != FORMAT_VERSION:
            raise ConfigError(
                f"unsupported passive-DNS archive version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        domains = [DomainName(str(d)) for d in archive["domains"]]
        db = PassiveDnsDatabase._from_arrays(  # noqa: SLF001 - same package
            domains=domains,
            first_seen=np.asarray(archive["first_seen"], dtype=np.int64),
            last_seen=np.asarray(archive["last_seen"], dtype=np.int64),
            totals=np.asarray(archive["totals"], dtype=np.int64),
            row_domain=np.asarray(archive["row_domain"], dtype=np.int64),
            row_time=np.asarray(archive["row_time"], dtype=np.int64),
            row_count=np.asarray(archive["row_count"], dtype=np.int64),
        )
    _validate(db)
    return db


@dataclass
class CheckpointState:
    """One durable snapshot of a long-running ingestion.

    ``cursor`` is how many source events had been *offered* when the
    snapshot was taken; ``injector_counters`` are the fault schedule's
    per-injector draw counts (so a resumed run can fast-forward its RNG
    streams); ``extra`` carries pipeline-specific counters verbatim.
    """

    database: PassiveDnsDatabase
    cursor: int
    injector_counters: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, int] = field(default_factory=dict)


def save_checkpoint(
    db: PassiveDnsDatabase,
    directory: PathLike,
    cursor: int,
    injector_counters: Optional[Dict[str, int]] = None,
    extra: Optional[Dict[str, int]] = None,
) -> Path:
    """Write a resumable ingestion snapshot under ``directory``."""
    if cursor < 0:
        raise ConfigError("checkpoint cursor must be non-negative")
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    save_database(db, root / "checkpoint.npz")
    manifest = {
        "version": CHECKPOINT_VERSION,
        "cursor": int(cursor),
        "fingerprint": db.fingerprint(),
        "deduplicate": db.deduplicate,
        "recent_keys": [list(key) for key in db.recent_keys()],
        "duplicates_suppressed": db.duplicates_suppressed,
        "injector_counters": dict(injector_counters or {}),
        "extra": dict(extra or {}),
    }
    (root / "checkpoint.json").write_text(json.dumps(manifest, indent=2))
    return root


def load_checkpoint(directory: PathLike) -> Optional[CheckpointState]:
    """Read a snapshot written by :func:`save_checkpoint`.

    Returns ``None`` when no checkpoint exists; raises
    :class:`ConfigError` when one exists but fails integrity checks.
    """
    root = Path(directory)
    manifest_path = root / "checkpoint.json"
    if not manifest_path.exists():
        return None
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("version") != CHECKPOINT_VERSION:
        raise ConfigError(
            f"unsupported checkpoint version {manifest.get('version')}"
        )
    db = load_database(root / "checkpoint.npz")
    if db.fingerprint() != manifest["fingerprint"]:
        raise ConfigError("corrupt checkpoint: store fingerprint mismatch")
    db.deduplicate = bool(manifest.get("deduplicate", False))
    db.restore_recent_keys(
        tuple(key) for key in manifest.get("recent_keys", [])
    )
    db.duplicates_suppressed = int(manifest.get("duplicates_suppressed", 0))
    return CheckpointState(
        database=db,
        cursor=int(manifest["cursor"]),
        injector_counters={
            str(k): int(v)
            for k, v in manifest.get("injector_counters", {}).items()
        },
        extra={str(k): int(v) for k, v in manifest.get("extra", {}).items()},
    )


def _validate(db: PassiveDnsDatabase) -> None:
    n = db.unique_domains()
    first_seen, last_seen, totals = db._aggregate_columns()  # noqa: SLF001
    if not (len(first_seen) == len(last_seen) == len(totals) == n):
        raise ConfigError("corrupt archive: aggregate column lengths differ")
    row_domain, row_time, row_count = db._columns()  # noqa: SLF001
    if not (len(row_domain) == len(row_time) == len(row_count)):
        raise ConfigError("corrupt archive: row column lengths differ")
    if len(row_domain) and int(row_domain.max()) >= n:
        raise ConfigError("corrupt archive: row references unknown domain id")
