"""Persistence for the passive DNS database.

An 8-year trace takes tens of seconds to generate; analyses over it
take milliseconds.  Saving the columnar store lets a generated trace
be reused across sessions (and shipped as a dataset artifact).  The
format is a single compressed ``.npz``: the interned domain table as a
string array, the per-domain aggregates, and the three row columns.

Durability contract: every writer here is atomic (same-directory temp
file, fsync, ``os.replace``) so a crash mid-save never destroys the
previous copy, and every reader wraps low-level corruption — a torn
zip, a truncated member, a fingerprint mismatch — in the typed
:class:`repro.errors.CorruptArchiveError` instead of leaking raw
``zipfile.BadZipFile``/``OSError``.  Checkpoints on a spill-backed
store route through :class:`repro.passivedns.spill.SpillStore`
generations instead of rewriting one monolithic archive.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.dns.name import DomainName
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.spill import atomic_write_bytes
from repro.errors import ConfigError, CorruptArchiveError

FORMAT_VERSION = 1
CHECKPOINT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]

#: Low-level failure modes a damaged ``.npz`` surfaces as.  Narrow on
#: purpose: ``ConfigError`` is a ``ValueError``, so a broad ``except
#: ValueError`` here would swallow our own version checks.
_CORRUPTION_ERRORS = (
    zipfile.BadZipFile,
    KeyError,
    EOFError,
    zlib.error,
    pickle.UnpicklingError,
)


def save_database(db: PassiveDnsDatabase, path: PathLike) -> None:
    """Write the store to ``path`` (.npz, compressed, atomically)."""
    domain_ids, times, counts = db._columns()  # noqa: SLF001 - same package
    first_seen, last_seen, totals = db._aggregate_columns()  # noqa: SLF001
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        version=np.int64(FORMAT_VERSION),
        domains=np.asarray([str(d) for d in db.all_domains()], dtype=object),
        first_seen=first_seen,
        last_seen=last_seen,
        totals=totals,
        row_domain=domain_ids,
        row_time=times,
        row_count=counts,
    )
    target = Path(path)
    if target.suffix != ".npz":
        # np.savez_compressed appends the suffix when given a filename;
        # writing through a buffer must not silently change the name.
        target = target.with_name(target.name + ".npz")
    atomic_write_bytes(target, buffer.getvalue())


def load_database(path: PathLike) -> PassiveDnsDatabase:
    """Read a store written by :func:`save_database`.

    Raises :class:`CorruptArchiveError` for a torn or truncated
    archive and :class:`ConfigError` for a format-version mismatch
    (a well-formed archive we simply do not speak).
    """
    try:
        with np.load(path, allow_pickle=True) as archive:
            version = int(archive["version"])
            if version != FORMAT_VERSION:
                raise ConfigError(
                    f"unsupported passive-DNS archive version {version} "
                    f"(expected {FORMAT_VERSION})"
                )
            domains = [DomainName(str(d)) for d in archive["domains"]]
            db = PassiveDnsDatabase._from_arrays(  # noqa: SLF001 - same package
                domains=domains,
                first_seen=np.asarray(archive["first_seen"], dtype=np.int64),
                last_seen=np.asarray(archive["last_seen"], dtype=np.int64),
                totals=np.asarray(archive["totals"], dtype=np.int64),
                row_domain=np.asarray(archive["row_domain"], dtype=np.int64),
                row_time=np.asarray(archive["row_time"], dtype=np.int64),
                row_count=np.asarray(archive["row_count"], dtype=np.int64),
            )
    except FileNotFoundError:
        raise
    except _CORRUPTION_ERRORS as error:
        raise CorruptArchiveError(path, f"unreadable npz archive: {error}")
    except OSError as error:
        raise CorruptArchiveError(path, f"unreadable npz archive: {error}")
    _validate(db)
    return db


@dataclass
class CheckpointState:
    """One durable snapshot of a long-running ingestion.

    ``cursor`` is how many source events had been *offered* when the
    snapshot was taken; ``injector_counters`` are the fault schedule's
    per-injector draw counts (so a resumed run can fast-forward its RNG
    streams); ``extra`` carries pipeline-specific counters verbatim.
    """

    database: PassiveDnsDatabase
    cursor: int
    injector_counters: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, int] = field(default_factory=dict)


def _checkpoint_payload(
    db: PassiveDnsDatabase,
    cursor: int,
    injector_counters: Optional[Dict[str, int]],
    extra: Optional[Dict[str, int]],
) -> Dict[str, object]:
    return {
        "version": CHECKPOINT_VERSION,
        "cursor": int(cursor),
        "fingerprint": db.fingerprint(),
        "deduplicate": db.deduplicate,
        "recent_keys": [list(key) for key in db.recent_keys()],
        "duplicates_suppressed": db.duplicates_suppressed,
        "injector_counters": dict(injector_counters or {}),
        "extra": dict(extra or {}),
    }


def save_checkpoint(
    db: PassiveDnsDatabase,
    directory: PathLike,
    cursor: int,
    injector_counters: Optional[Dict[str, int]] = None,
    extra: Optional[Dict[str, int]] = None,
) -> Path:
    """Write a resumable ingestion snapshot under ``directory``.

    An in-memory store lands as an atomic ``checkpoint.npz`` +
    ``checkpoint.json`` pair.  A spill-backed store (opened with
    ``spill_dir=``) instead commits a new manifest generation in its
    own directory — ``directory`` must then be the spill directory —
    with the checkpoint payload carried in the manifest ``meta``, so
    the snapshot cost is the unsealed tail, not the whole store.
    """
    if cursor < 0:
        raise ConfigError("checkpoint cursor must be non-negative")
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    manifest = _checkpoint_payload(db, cursor, injector_counters, extra)
    if db.spill is not None:
        if root.resolve() != db.spill.directory.resolve():
            raise ConfigError(
                "spill-backed checkpoints must target the spill directory"
            )
        db.spill_commit({"checkpoint": manifest})
        return root
    save_database(db, root / "checkpoint.npz")
    atomic_write_bytes(
        root / "checkpoint.json",
        json.dumps(manifest, indent=2).encode("utf-8"),
    )
    return root


def _spill_checkpoint_state(
    root: Path, spill_compact_threshold: int = 0
) -> Optional[CheckpointState]:
    """Load a checkpoint committed into a spill directory's manifest."""
    db = PassiveDnsDatabase(
        spill_dir=root, spill_compact_threshold=spill_compact_threshold
    )
    assert db.spill is not None
    manifest = db.spill.meta.get("checkpoint")
    if manifest is None:
        return None
    if manifest.get("version") != CHECKPOINT_VERSION:
        raise ConfigError(
            f"unsupported checkpoint version {manifest.get('version')}"
        )
    if db.fingerprint() != manifest["fingerprint"]:
        raise CorruptArchiveError(
            root, "checkpoint store fingerprint mismatch"
        )
    db.deduplicate = bool(manifest.get("deduplicate", False))
    db.restore_recent_keys(
        tuple(key) for key in manifest.get("recent_keys", [])
    )
    db.duplicates_suppressed = int(manifest.get("duplicates_suppressed", 0))
    return CheckpointState(
        database=db,
        cursor=int(manifest["cursor"]),
        injector_counters={
            str(k): int(v)
            for k, v in manifest.get("injector_counters", {}).items()
        },
        extra={str(k): int(v) for k, v in manifest.get("extra", {}).items()},
    )


def load_checkpoint(
    directory: PathLike, *, spill_compact_threshold: int = 0
) -> Optional[CheckpointState]:
    """Read a snapshot written by :func:`save_checkpoint`.

    Detects the layout: a spill directory (journaled manifest store)
    is recovered through :class:`~repro.passivedns.spill.SpillStore`;
    otherwise the classic ``checkpoint.npz`` pair is read.
    ``spill_compact_threshold`` is forwarded to the recovered
    spill-backed store so a resumed pipeline keeps its auto-compaction
    posture; it is ignored for the ``.npz`` layout.  Returns ``None``
    when no checkpoint exists; raises :class:`CorruptArchiveError`
    when one exists but fails integrity checks, :class:`ConfigError`
    on a version we do not speak.
    """
    root = Path(directory)
    if (root / "CURRENT").exists() or (root / "journal.log").exists():
        return _spill_checkpoint_state(
            root, spill_compact_threshold=spill_compact_threshold
        )
    manifest_path = root / "checkpoint.json"
    if not manifest_path.exists():
        return None
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise CorruptArchiveError(manifest_path, f"unparseable JSON: {error}")
    if manifest.get("version") != CHECKPOINT_VERSION:
        raise ConfigError(
            f"unsupported checkpoint version {manifest.get('version')}"
        )
    db = load_database(root / "checkpoint.npz")
    if db.fingerprint() != manifest["fingerprint"]:
        raise CorruptArchiveError(
            root / "checkpoint.npz", "checkpoint store fingerprint mismatch"
        )
    db.deduplicate = bool(manifest.get("deduplicate", False))
    db.restore_recent_keys(
        tuple(key) for key in manifest.get("recent_keys", [])
    )
    db.duplicates_suppressed = int(manifest.get("duplicates_suppressed", 0))
    return CheckpointState(
        database=db,
        cursor=int(manifest["cursor"]),
        injector_counters={
            str(k): int(v)
            for k, v in manifest.get("injector_counters", {}).items()
        },
        extra={str(k): int(v) for k, v in manifest.get("extra", {}).items()},
    )


def _validate(db: PassiveDnsDatabase) -> None:
    n = db.unique_domains()
    first_seen, last_seen, totals = db._aggregate_columns()  # noqa: SLF001
    if not (len(first_seen) == len(last_seen) == len(totals) == n):
        raise CorruptArchiveError(
            "<archive>", "aggregate column lengths differ"
        )
    row_domain, row_time, row_count = db._columns()  # noqa: SLF001
    if not (len(row_domain) == len(row_time) == len(row_count)):
        raise CorruptArchiveError("<archive>", "row column lengths differ")
    if len(row_domain) and int(row_domain.max()) >= n:
        raise CorruptArchiveError(
            "<archive>", "row references unknown domain id"
        )
