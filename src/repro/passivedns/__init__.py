"""Passive DNS collection pipeline (Farsight SIE stand-in).

Reproduces the data path of §3.1: *sensors* at vantage points observe
wire-format DNS responses, filter for NXDOMAIN (channel 221 in SIE
terms) while excluding reverse lookups, and publish observations to a
*channel*; the *database* subscribes and maintains the columnar store
the scale analyses (§4) aggregate over; *sampling* implements the
paper's 1/1,000 uniform domain sample (§4.2); *spill* is the
crash-safe on-disk segment store behind ``spill_dir=`` mode (see
``docs/RESILIENCE.md``).
"""

from repro.passivedns.channel import SieChannel
from repro.passivedns.database import DomainProfile, PassiveDnsDatabase
from repro.passivedns.record import DnsObservation
from repro.passivedns.io import load_database, save_database
from repro.passivedns.sampling import sample_domains
from repro.passivedns.sensor import Sensor, SensorTappedResolver
from repro.passivedns.spill import (
    QuarantineEntry,
    RecoveryReport,
    SegmentInfo,
    SidecarInfo,
    SpillStore,
)
from repro.passivedns.vantage import MultiVantageCollector, replay_clients

__all__ = [  # repro: noqa[REP104] aggregation result type; exported for annotations
    "DnsObservation",
    "DomainProfile",
    "MultiVantageCollector",
    "PassiveDnsDatabase",
    "QuarantineEntry",
    "RecoveryReport",
    "SegmentInfo",
    "Sensor",
    "SensorTappedResolver",
    "SidecarInfo",
    "SieChannel",
    "SpillStore",
    "load_database",
    "replay_clients",
    "sample_domains",
    "save_database",
]
