"""Collection sensors.

A :class:`Sensor` is a wire tap: it is handed raw DNS response bytes
(exactly what a span port sees), decodes them with the library's RFC
1035 codec, and publishes qualifying observations to its channel.
:class:`SensorTappedResolver` is the convenience deployment used by
the workload layer — a recursive resolver whose *upstream* traffic is
mirrored to a sensor, matching Farsight's dominant vantage point
(between recursive resolvers and authoritative servers, above caches).

A sensor may carry a :class:`~repro.faults.plan.FaultSchedule`, in
which case the schedule's corruption injector mangles wire bytes
before decoding and its drop injector models dark windows and packet
loss — with every outcome tallied in :class:`SensorStats` rather than
lost silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.dns.message import DnsMessage, RRType
from repro.dns.name import DomainName
from repro.dns.resolver import RecursiveResolver, ResolutionResult
from repro.dns.wire import decode_message
from repro.errors import WireFormatError
from repro.passivedns.channel import SieChannel
from repro.passivedns.record import DnsObservation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultSchedule


@dataclass
class SensorStats:
    """Structured drop/corruption accounting for one sensor."""

    observed: int = 0
    decode_errors: int = 0
    corrupted: int = 0
    dropped: int = 0
    published: int = 0
    filtered: int = 0

    @property
    def loss(self) -> int:
        """Observations the sensor itself lost (decode + drops)."""
        return self.decode_errors + self.dropped


class Sensor:
    """Decodes wire responses and publishes observations."""

    def __init__(
        self,
        sensor_id: str,
        channel: SieChannel,
        faults: Optional["FaultSchedule"] = None,
    ) -> None:
        self.sensor_id = sensor_id
        self.channel = channel
        self.faults = faults
        self.stats = SensorStats()

    # Back-compatible counter views -----------------------------------------

    @property
    def observed(self) -> int:
        return self.stats.observed

    @property
    def decode_errors(self) -> int:
        return self.stats.decode_errors

    # -- capture -------------------------------------------------------------

    def observe_wire(self, response_bytes: bytes, now: int) -> Optional[DnsObservation]:
        """Tap one wire-format response; malformed packets are counted
        and dropped, never raised (a sensor must not crash on noise)."""
        if self.faults is not None:
            mangled = self.faults.corrupt.corrupt(response_bytes)
            if mangled is not response_bytes:
                self.stats.corrupted += 1
            response_bytes = mangled
        try:
            message = decode_message(response_bytes)
        except WireFormatError:
            self.stats.decode_errors += 1
            return None
        return self.observe_message(message, now)

    def observe_message(
        self, message: DnsMessage, now: int, count: int = 1
    ) -> Optional[DnsObservation]:
        """Tap an already-decoded response message."""
        if not message.is_response or not message.questions:
            return None
        self.stats.observed += 1
        if self._drops(now):
            return None
        observation = DnsObservation(
            qname=message.question.name,
            rcode=message.rcode,
            timestamp=now,
            sensor_id=self.sensor_id,
            rtype=message.question.rtype,
            count=count,
        )
        return self._publish(observation)

    def observe_result(
        self, result: ResolutionResult, now: int, count: int = 1
    ) -> Optional[DnsObservation]:
        """Tap a resolver-level result (the aggregated fast path)."""
        self.stats.observed += 1
        if self._drops(now):
            return None
        observation = DnsObservation(
            qname=result.qname,
            rcode=result.rcode,
            timestamp=now,
            sensor_id=self.sensor_id,
            rtype=result.rtype,
            count=count,
        )
        return self._publish(observation)

    # -- internals -----------------------------------------------------------

    def _drops(self, now: int) -> bool:
        if self.faults is not None and self.faults.drop.should_drop(now):
            self.stats.dropped += 1
            return True
        return False

    def _publish(self, observation: DnsObservation) -> Optional[DnsObservation]:
        if self.channel.publish(observation):
            self.stats.published += 1
            return observation
        self.stats.filtered += 1
        return None


class SensorTappedResolver:
    """A recursive resolver whose cache-miss traffic feeds a sensor.

    Only *upstream* resolutions are visible to the sensor — cache hits
    (positive or negative) never leave the resolver, which is exactly
    why negative caching suppresses repeat NXDomain observations and
    why the negative-caching ablation changes measured volume.
    """

    def __init__(self, resolver: RecursiveResolver, sensor: Sensor) -> None:
        self.resolver = resolver
        self.sensor = sensor

    def resolve(
        self, qname: DomainName, now: int, rtype: RRType = RRType.A
    ) -> ResolutionResult:
        result = self.resolver.resolve(qname, now, rtype)
        if not result.from_cache:
            self.sensor.observe_result(result, now)
        return result
