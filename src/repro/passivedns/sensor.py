"""Collection sensors.

A :class:`Sensor` is a wire tap: it is handed raw DNS response bytes
(exactly what a span port sees), decodes them with the library's RFC
1035 codec, and publishes qualifying observations to its channel.
:class:`SensorTappedResolver` is the convenience deployment used by
the workload layer — a recursive resolver whose *upstream* traffic is
mirrored to a sensor, matching Farsight's dominant vantage point
(between recursive resolvers and authoritative servers, above caches).
"""

from __future__ import annotations

from typing import Optional

from repro.dns.message import DnsMessage, RRType
from repro.dns.name import DomainName
from repro.dns.resolver import RecursiveResolver, ResolutionResult
from repro.dns.wire import decode_message
from repro.errors import WireFormatError
from repro.passivedns.channel import SieChannel
from repro.passivedns.record import DnsObservation


class Sensor:
    """Decodes wire responses and publishes observations."""

    def __init__(self, sensor_id: str, channel: SieChannel) -> None:
        self.sensor_id = sensor_id
        self.channel = channel
        self.observed = 0
        self.decode_errors = 0

    def observe_wire(self, response_bytes: bytes, now: int) -> Optional[DnsObservation]:
        """Tap one wire-format response; malformed packets are counted
        and dropped, never raised (a sensor must not crash on noise)."""
        try:
            message = decode_message(response_bytes)
        except WireFormatError:
            self.decode_errors += 1
            return None
        return self.observe_message(message, now)

    def observe_message(
        self, message: DnsMessage, now: int, count: int = 1
    ) -> Optional[DnsObservation]:
        """Tap an already-decoded response message."""
        if not message.is_response or not message.questions:
            return None
        self.observed += 1
        observation = DnsObservation(
            qname=message.question.name,
            rcode=message.rcode,
            timestamp=now,
            sensor_id=self.sensor_id,
            rtype=message.question.rtype,
            count=count,
        )
        return observation if self.channel.publish(observation) else None

    def observe_result(
        self, result: ResolutionResult, now: int, count: int = 1
    ) -> Optional[DnsObservation]:
        """Tap a resolver-level result (the aggregated fast path)."""
        self.observed += 1
        observation = DnsObservation(
            qname=result.qname,
            rcode=result.rcode,
            timestamp=now,
            sensor_id=self.sensor_id,
            rtype=result.rtype,
            count=count,
        )
        return observation if self.channel.publish(observation) else None


class SensorTappedResolver:
    """A recursive resolver whose cache-miss traffic feeds a sensor.

    Only *upstream* resolutions are visible to the sensor — cache hits
    (positive or negative) never leave the resolver, which is exactly
    why negative caching suppresses repeat NXDomain observations and
    why the negative-caching ablation changes measured volume.
    """

    def __init__(self, resolver: RecursiveResolver, sensor: Sensor) -> None:
        self.resolver = resolver
        self.sensor = sensor

    def resolve(
        self, qname: DomainName, now: int, rtype: RRType = RRType.A
    ) -> ResolutionResult:
        result = self.resolver.resolve(qname, now, rtype)
        if not result.from_cache:
            self.sensor.observe_result(result, now)
        return result
