"""The SIE-style distribution channel.

Sensors publish observations; subscribers (the passive DNS database,
ad-hoc analysis taps) receive every observation that passes the
channel's filter.  Channel 221 — the one the paper consumes — carries
only NXDOMAIN responses and drops reverse-lookup names, so that filter
is the default here.

Fan-out is *isolated*: one crashing subscriber can no longer starve
the subscribers after it of an observation.  What happens to the error
afterwards is the channel's :class:`DeliveryErrorPolicy` — re-raised
(the default, preserving fail-fast behaviour), counted, or counted
*and* pushed to a dead-letter queue for replay.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.errors import ConfigError, ReproError, UnknownKeyError
from repro.passivedns.record import DnsObservation
from repro.resilience.dlq import DeadLetterQueue

Subscriber = Callable[[DnsObservation], None]


class DeliveryErrorPolicy(enum.Enum):
    """What the channel does with a subscriber's ``ReproError``."""

    #: Deliver to every remaining subscriber, then re-raise the first
    #: error (the pre-resilience surface, minus the lost fanout).
    RAISE = "raise"
    #: Count the error and keep going.
    COUNT = "count"
    #: Count and quarantine the observation for replay.
    DEAD_LETTER = "dead-letter"


class SieChannel:
    """A filtered pub/sub channel for DNS observations."""

    #: SIE channel number for NXDomains, for fidelity of labels/logs.
    NXDOMAIN_CHANNEL = 221

    def __init__(
        self,
        nxdomain_only: bool = True,
        drop_reverse_lookups: bool = True,
        error_policy: DeliveryErrorPolicy = DeliveryErrorPolicy.RAISE,
        dead_letters: Optional[DeadLetterQueue] = None,
    ) -> None:
        if (
            error_policy is DeliveryErrorPolicy.DEAD_LETTER
            and dead_letters is None
        ):
            raise ConfigError(
                "DEAD_LETTER policy requires a DeadLetterQueue"
            )
        self.nxdomain_only = nxdomain_only
        self.drop_reverse_lookups = drop_reverse_lookups
        self.error_policy = error_policy
        self.dead_letters = dead_letters
        self._subscribers: List[Subscriber] = []
        self.published = 0
        self.dropped = 0
        self.subscriber_errors = 0

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a callback invoked for each accepted observation."""
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove a previously registered callback."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            raise UnknownKeyError(
                f"subscriber {subscriber!r} is not registered"
            ) from None

    def publish(self, observation: DnsObservation) -> bool:
        """Offer an observation; returns True when it passed the filter.

        Every subscriber is attempted even when an earlier one raises a
        :class:`ReproError`; programming errors outside the library's
        hierarchy still propagate immediately.
        """
        if self.nxdomain_only and not observation.is_nxdomain:
            self.dropped += 1
            return False
        if self.drop_reverse_lookups and observation.qname.is_reverse_lookup():
            self.dropped += 1
            return False
        self.published += 1
        first_error: Optional[ReproError] = None
        for subscriber in self._subscribers:
            try:
                subscriber(observation)
            except ReproError as exc:
                self.subscriber_errors += 1
                if self.error_policy is DeliveryErrorPolicy.RAISE:
                    if first_error is None:
                        first_error = exc
                elif self.error_policy is DeliveryErrorPolicy.DEAD_LETTER:
                    assert self.dead_letters is not None
                    self.dead_letters.push(
                        observation,
                        reason=f"subscriber failed: {exc}",
                        timestamp=observation.timestamp,
                    )
        if first_error is not None:
            raise first_error
        return True

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)
