"""The SIE-style distribution channel.

Sensors publish observations; subscribers (the passive DNS database,
ad-hoc analysis taps) receive every observation that passes the
channel's filter.  Channel 221 — the one the paper consumes — carries
only NXDOMAIN responses and drops reverse-lookup names, so that filter
is the default here.
"""

from __future__ import annotations

from typing import Callable, List

from repro.passivedns.record import DnsObservation

Subscriber = Callable[[DnsObservation], None]


class SieChannel:
    """A filtered pub/sub channel for DNS observations."""

    #: SIE channel number for NXDomains, for fidelity of labels/logs.
    NXDOMAIN_CHANNEL = 221

    def __init__(
        self,
        nxdomain_only: bool = True,
        drop_reverse_lookups: bool = True,
    ) -> None:
        self.nxdomain_only = nxdomain_only
        self.drop_reverse_lookups = drop_reverse_lookups
        self._subscribers: List[Subscriber] = []
        self.published = 0
        self.dropped = 0

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a callback invoked for each accepted observation."""
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.remove(subscriber)

    def publish(self, observation: DnsObservation) -> bool:
        """Offer an observation; returns True when it passed the filter."""
        if self.nxdomain_only and not observation.is_nxdomain:
            self.dropped += 1
            return False
        if self.drop_reverse_lookups and observation.qname.is_reverse_lookup():
            self.dropped += 1
            return False
        self.published += 1
        for subscriber in self._subscribers:
            subscriber(observation)
        return True

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)
