"""Iterative and recursive (caching) resolution.

Mirrors Figure 1 of the paper: a user asks the local (recursive)
resolver; on a cache miss the resolver walks root → TLD → authoritative
servers, following referrals, and finally caches the outcome —
including negative outcomes per RFC 2308, which is what makes repeat
queries to an NXDomain invisible above the cache for the negative TTL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.dns.cache import CacheOutcome, ResolverCache
from repro.dns.message import DnsMessage, RCode, ResourceRecord, RRType
from repro.dns.name import DomainName
from repro.dns.zone import AuthoritativeServer
from repro.errors import ResolutionError, TransientError
from repro.resilience.retry import RetryPolicy

MAX_REFERRALS = 16
MAX_CNAME_CHAIN = 8


class StepKind(enum.Enum):
    """What happened at one hop of an iterative walk."""

    CACHE_HIT = "cache-hit"
    CACHE_NEGATIVE = "cache-negative"
    REFERRAL = "referral"
    ANSWER = "answer"
    CNAME = "cname"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"
    ERROR = "error"


@dataclass(frozen=True)
class TraceStep:
    """One hop: which server was asked and what it said."""

    server: str
    qname: DomainName
    rtype: RRType
    kind: StepKind

    def __str__(self) -> str:
        return f"{self.server}: {self.qname}/{self.rtype.name} -> {self.kind.value}"


@dataclass
class ResolutionTrace:
    """The ordered hops of one resolution."""

    steps: List[TraceStep] = field(default_factory=list)

    def add(self, server: str, qname: DomainName, rtype: RRType, kind: StepKind) -> None:
        self.steps.append(TraceStep(server, qname, rtype, kind))

    @property
    def referral_count(self) -> int:
        return sum(1 for s in self.steps if s.kind == StepKind.REFERRAL)

    def servers_visited(self) -> List[str]:
        return [s.server for s in self.steps]

    def __len__(self) -> int:
        return len(self.steps)


@dataclass
class ResolutionResult:
    """The outcome of resolving one (name, type)."""

    qname: DomainName
    rtype: RRType
    rcode: RCode
    answers: List[ResourceRecord] = field(default_factory=list)
    negative_ttl: Optional[int] = None
    from_cache: bool = False
    trace: ResolutionTrace = field(default_factory=ResolutionTrace)

    @property
    def is_nxdomain(self) -> bool:
        return self.rcode == RCode.NXDOMAIN

    @property
    def is_nodata(self) -> bool:
        return self.rcode == RCode.NOERROR and not self.answers

    def addresses(self) -> List[str]:
        """All A/AAAA RDATA strings in the answer."""
        return [rr.rdata for rr in self.answers if rr.rtype in (RRType.A, RRType.AAAA)]


class IterativeResolver:
    """Walks the authoritative hierarchy from the root down.

    ``server_registry`` maps nameserver *hostnames* (the RDATA of NS
    records) to :class:`AuthoritativeServer` instances — the simulation
    analogue of resolving the nameserver's glue address and connecting
    to it.  The mapping is shared, not copied: registrations performed
    after the resolver is built (the registry delegating a new domain)
    must be reachable immediately, as on the real Internet.
    """

    def __init__(
        self,
        root_server: AuthoritativeServer,
        server_registry: Dict[str, AuthoritativeServer],
        fault_hook: Optional[Callable[[DomainName], None]] = None,
    ) -> None:
        self.root_server = root_server
        self.server_registry = server_registry
        self.queries_sent = 0
        #: Called with the qname before each walk; a fault harness can
        #: raise :class:`~repro.errors.TransientResolutionError` here to
        #: model an unreachable upstream path.
        self.fault_hook = fault_hook

    def register_server(self, hostname: DomainName, server: AuthoritativeServer) -> None:
        """Make ``hostname`` route to ``server`` for future referrals."""
        self.server_registry[str(hostname)] = server

    def unregister_server(self, hostname: DomainName) -> None:
        self.server_registry.pop(str(hostname), None)

    def resolve(
        self, qname: DomainName, rtype: RRType = RRType.A, msg_id: int = 0
    ) -> ResolutionResult:
        """Resolve iteratively, following referrals and CNAMEs."""
        if self.fault_hook is not None:
            self.fault_hook(qname)
        trace = ResolutionTrace()
        current_name = qname
        collected: List[ResourceRecord] = []
        for _ in range(MAX_CNAME_CHAIN):
            outcome = self._walk(current_name, rtype, msg_id, trace)
            rcode, answers, negative_ttl = outcome
            cname = _single_cname(answers, current_name)
            if cname is not None and rtype not in (RRType.CNAME, RRType.ANY):
                collected.extend(answers)
                current_name = cname
                continue
            return ResolutionResult(
                qname=qname,
                rtype=rtype,
                rcode=rcode,
                answers=collected + answers,
                negative_ttl=negative_ttl,
                trace=trace,
            )
        raise ResolutionError(f"CNAME chain exceeds {MAX_CNAME_CHAIN} for {qname}")

    def _walk(
        self,
        qname: DomainName,
        rtype: RRType,
        msg_id: int,
        trace: ResolutionTrace,
    ) -> Tuple[RCode, List[ResourceRecord], Optional[int]]:
        server = self.root_server
        for _ in range(MAX_REFERRALS):
            query = DnsMessage.make_query(
                qname, rtype, msg_id=msg_id, recursion_desired=False
            )
            self.queries_sent += 1
            response = server.handle_query(query)
            if response.rcode == RCode.REFUSED:
                trace.add(server.name, qname, rtype, StepKind.ERROR)
                raise ResolutionError(
                    f"{server.name} refused query for {qname} (lame delegation)"
                )
            if response.rcode == RCode.NXDOMAIN:
                trace.add(server.name, qname, rtype, StepKind.NXDOMAIN)
                return RCode.NXDOMAIN, [], response.soa_minimum_ttl()
            if response.answers:
                has_cname = any(rr.rtype == RRType.CNAME for rr in response.answers)
                kind = StepKind.CNAME if has_cname else StepKind.ANSWER
                trace.add(server.name, qname, rtype, kind)
                return RCode.NOERROR, list(response.answers), None
            if response.is_referral():
                trace.add(server.name, qname, rtype, StepKind.REFERRAL)
                server = self._follow_referral(response, qname)
                continue
            # Authoritative empty answer: NODATA.
            trace.add(server.name, qname, rtype, StepKind.NODATA)
            return RCode.NOERROR, [], response.soa_minimum_ttl()
        raise ResolutionError(f"referral chain exceeds {MAX_REFERRALS} for {qname}")

    def _follow_referral(
        self, response: DnsMessage, qname: DomainName
    ) -> AuthoritativeServer:
        for ns in response.authorities:
            if ns.rtype != RRType.NS:
                continue
            target = self.server_registry.get(ns.rdata)
            if target is not None:
                return target
        raise ResolutionError(
            f"no reachable nameserver among referrals for {qname}: "
            f"{[rr.rdata for rr in response.authorities if rr.rtype == RRType.NS]}"
        )


@dataclass
class RecursiveStats:
    """Counters a local resolver operator would graph."""

    queries: int = 0
    cache_hits: int = 0
    negative_cache_hits: int = 0
    upstream_resolutions: int = 0
    upstream_retries: int = 0
    nxdomain_responses: int = 0
    nodata_responses: int = 0


class RecursiveResolver:
    """A caching local resolver (the "Local DNS" of Figure 1).

    ``use_negative_cache`` exists for the negative-caching ablation:
    with it off, every repeat query to an NXDomain goes upstream and is
    visible to passive DNS sensors sitting above the cache.
    """

    def __init__(
        self,
        iterative: IterativeResolver,
        cache: Optional[ResolverCache] = None,
        use_negative_cache: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        retry_rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.iterative = iterative
        self.cache = cache if cache is not None else ResolverCache()
        self.use_negative_cache = use_negative_cache
        self.stats = RecursiveStats()
        #: When set, transient upstream failures (an injected
        #: :class:`~repro.errors.TransientResolutionError`, a flapping
        #: link) are retried instead of surfacing to the stub.
        self.retry_policy = retry_policy
        self.retry_rng = retry_rng

    def resolve(
        self, qname: DomainName, now: int, rtype: RRType = RRType.A
    ) -> ResolutionResult:
        """Resolve with caching; ``now`` drives TTL expiry."""
        self.stats.queries += 1
        outcome, entry = self.cache.probe(qname, rtype, now)
        if outcome == CacheOutcome.POSITIVE and entry is not None:
            self.stats.cache_hits += 1
            remaining = entry.remaining_ttl(now)
            result = ResolutionResult(
                qname=qname,
                rtype=rtype,
                rcode=RCode.NOERROR,
                answers=[rr.with_ttl(remaining) for rr in entry.records],
                from_cache=True,
            )
            result.trace.add("cache", qname, rtype, StepKind.CACHE_HIT)
            return result
        if (
            outcome in (CacheOutcome.NEGATIVE_NXDOMAIN, CacheOutcome.NEGATIVE_NODATA)
            and entry is not None
            and self.use_negative_cache
        ):
            self.stats.negative_cache_hits += 1
            rcode = (
                RCode.NXDOMAIN
                if outcome == CacheOutcome.NEGATIVE_NXDOMAIN
                else RCode.NOERROR
            )
            if rcode == RCode.NXDOMAIN:
                self.stats.nxdomain_responses += 1
            else:
                self.stats.nodata_responses += 1
            result = ResolutionResult(
                qname=qname,
                rtype=rtype,
                rcode=rcode,
                negative_ttl=entry.remaining_ttl(now),
                from_cache=True,
            )
            result.trace.add("cache", qname, rtype, StepKind.CACHE_NEGATIVE)
            return result

        self.stats.upstream_resolutions += 1
        result = self._resolve_upstream(qname, rtype)
        if result.rcode == RCode.NXDOMAIN:
            self.stats.nxdomain_responses += 1
            if self.use_negative_cache:
                ttl = result.negative_ttl if result.negative_ttl is not None else 900
                self.cache.store_nxdomain(qname, ttl, now)
        elif result.answers:
            self.cache.store_positive(qname, rtype, result.answers, now)
        else:
            self.stats.nodata_responses += 1
            if self.use_negative_cache:
                ttl = result.negative_ttl if result.negative_ttl is not None else 900
                self.cache.store_nodata(qname, rtype, ttl, now)
        return result

    def _resolve_upstream(
        self, qname: DomainName, rtype: RRType
    ) -> ResolutionResult:
        if self.retry_policy is None:
            return self.iterative.resolve(qname, rtype)

        def count_retry(attempt: int, error: BaseException) -> None:
            self.stats.upstream_retries += 1

        return self.retry_policy.run(
            lambda: self.iterative.resolve(qname, rtype),
            rng=self.retry_rng,
            retry_on=(TransientError,),
            on_retry=count_retry,
        )


def _single_cname(
    answers: List[ResourceRecord], qname: DomainName
) -> Optional[DomainName]:
    """The CNAME target when the answer is exactly one CNAME for qname."""
    cnames = [rr for rr in answers if rr.rtype == RRType.CNAME and rr.name == qname]
    non_cnames = [rr for rr in answers if rr.rtype != RRType.CNAME]
    if cnames and not non_cnames:
        return DomainName(cnames[0].rdata)
    return None
