"""DNS substrate: names, messages, wire format, zones, resolution, caching.

This package implements enough of the DNS (RFC 1034/1035, with RFC 2308
negative caching) that NXDomain responses elsewhere in the library are
produced by actually resolving names through a root / TLD / authoritative
hierarchy rather than being fabricated.
"""

from repro.dns.cache import CacheEntry, CacheOutcome, ResolverCache
from repro.dns.hierarchy import DnsHierarchy
from repro.dns.hijack import HijackingResolver
from repro.dns.zonefile import parse_zone_file, serialize_zone
from repro.dns.message import (
    DnsMessage,
    OpCode,
    Question,
    RCode,
    ResourceRecord,
    RRClass,
    RRType,
)
from repro.dns.name import DomainName
from repro.dns.resolver import (
    IterativeResolver,
    RecursiveResolver,
    ResolutionResult,
    ResolutionTrace,
)
from repro.dns.tld import TldRegistry
from repro.dns.wire import decode_message, encode_message
from repro.dns.zone import AuthoritativeServer, Zone

__all__ = [  # repro: noqa[REP104] resolver result types; exported for annotations
    "AuthoritativeServer",
    "CacheEntry",
    "CacheOutcome",
    "DnsHierarchy",
    "DnsMessage",
    "HijackingResolver",
    "DomainName",
    "IterativeResolver",
    "OpCode",
    "Question",
    "RCode",
    "RRClass",
    "RRType",
    "RecursiveResolver",
    "ResolutionResult",
    "ResolutionTrace",
    "ResolverCache",
    "ResourceRecord",
    "TldRegistry",
    "Zone",
    "decode_message",
    "encode_message",
    "parse_zone_file",
    "serialize_zone",
]
