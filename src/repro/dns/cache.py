"""Resolver cache with TTL expiry and RFC 2308 negative caching.

The cache is shared between the recursive resolver (caching answers so
repeated user queries don't traverse the hierarchy, Figure 1 step ⑤)
and the passive DNS pipeline's modelling of what sensors above the
cache do or don't see.  Negative entries (NXDOMAIN and NODATA) are
cached keyed by (name, type) with the TTL derived from the authority
SOA, exactly the behaviour RFC 2308 §5 prescribes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.message import RCode, ResourceRecord, RRType
from repro.dns.name import DomainName
from repro.errors import ConfigError


class CacheOutcome(enum.Enum):
    """What a cache probe found."""

    MISS = "miss"
    POSITIVE = "positive"
    NEGATIVE_NXDOMAIN = "negative-nxdomain"
    NEGATIVE_NODATA = "negative-nodata"


@dataclass
class CacheEntry:
    """One cached (name, type) outcome."""

    name: DomainName
    rtype: RRType
    stored_at: int
    ttl: int
    records: List[ResourceRecord] = field(default_factory=list)
    rcode: RCode = RCode.NOERROR

    @property
    def is_negative(self) -> bool:
        return self.rcode == RCode.NXDOMAIN or not self.records

    def expires_at(self) -> int:
        return self.stored_at + self.ttl

    def is_expired(self, now: int) -> bool:
        return now >= self.expires_at()

    def remaining_ttl(self, now: int) -> int:
        return max(0, self.expires_at() - now)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.negative_hits

    def hit_ratio(self) -> float:
        total = self.lookups
        if total == 0:
            return 0.0
        return (self.hits + self.negative_hits) / total


class ResolverCache:
    """A TTL-bounded positive + negative cache.

    ``max_entries`` bounds memory; eviction removes the entries that
    expire soonest (a good-enough stand-in for LRU given TTL-driven
    workloads).

    ``max_negative_ttl`` caps negative TTLs as RFC 2308 §5 recommends
    (it suggests 1-3 hours, maximum one day).
    """

    DEFAULT_MAX_NEGATIVE_TTL = 3 * 3600

    def __init__(
        self,
        max_entries: int = 100_000,
        max_negative_ttl: int = DEFAULT_MAX_NEGATIVE_TTL,
    ) -> None:
        if max_entries <= 0:
            raise ConfigError("max_entries must be positive")
        self.max_entries = max_entries
        self.max_negative_ttl = max_negative_ttl
        self._entries: Dict[Tuple[DomainName, RRType], CacheEntry] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # -- probing --------------------------------------------------------

    def probe(
        self, name: DomainName, rtype: RRType, now: int
    ) -> Tuple[CacheOutcome, Optional[CacheEntry]]:
        """Look up (name, type), honouring TTL expiry at time ``now``.

        An NXDOMAIN entry for a name answers *any* type for that name
        (RFC 2308 §5: the name does not exist, so no type does).
        """
        entry = self._entries.get((name, rtype))
        if entry is not None and entry.is_expired(now):
            del self._entries[(name, rtype)]
            self.stats.evictions += 1
            entry = None
        if entry is None:
            # Type-independent NXDOMAIN entries are stored under ANY.
            nx = self._entries.get((name, RRType.ANY))
            if nx is not None and nx.is_expired(now):
                del self._entries[(name, RRType.ANY)]
                self.stats.evictions += 1
                nx = None
            if nx is not None and nx.rcode == RCode.NXDOMAIN:
                self.stats.negative_hits += 1
                return CacheOutcome.NEGATIVE_NXDOMAIN, nx
            self.stats.misses += 1
            return CacheOutcome.MISS, None
        if entry.rcode == RCode.NXDOMAIN:
            self.stats.negative_hits += 1
            return CacheOutcome.NEGATIVE_NXDOMAIN, entry
        if not entry.records:
            self.stats.negative_hits += 1
            return CacheOutcome.NEGATIVE_NODATA, entry
        self.stats.hits += 1
        return CacheOutcome.POSITIVE, entry

    # -- population -------------------------------------------------------

    def store_positive(
        self, name: DomainName, rtype: RRType, records: List[ResourceRecord], now: int
    ) -> CacheEntry:
        """Cache an answer; entry TTL is the minimum record TTL."""
        if not records:
            raise ConfigError("positive entries need at least one record")
        ttl = min(rr.ttl for rr in records)
        entry = CacheEntry(name, rtype, now, ttl, records=list(records))
        self._insert((name, rtype), entry)
        return entry

    def store_nxdomain(
        self, name: DomainName, negative_ttl: int, now: int
    ) -> CacheEntry:
        """Cache an NXDOMAIN for ``name`` (applies to every type)."""
        ttl = min(negative_ttl, self.max_negative_ttl)
        entry = CacheEntry(name, RRType.ANY, now, ttl, rcode=RCode.NXDOMAIN)
        self._insert((name, RRType.ANY), entry)
        return entry

    def store_nodata(
        self, name: DomainName, rtype: RRType, negative_ttl: int, now: int
    ) -> CacheEntry:
        """Cache a NODATA for the specific (name, type)."""
        ttl = min(negative_ttl, self.max_negative_ttl)
        entry = CacheEntry(name, rtype, now, ttl, rcode=RCode.NOERROR)
        self._insert((name, rtype), entry)
        return entry

    def flush_name(self, name: DomainName) -> int:
        """Drop every entry for ``name``; returns the number removed."""
        keys = [key for key in self._entries if key[0] == name]
        for key in keys:
            del self._entries[key]
        return len(keys)

    def clear(self) -> None:
        self._entries.clear()

    # -- internals -------------------------------------------------------

    def _insert(self, key: Tuple[DomainName, RRType], entry: CacheEntry) -> None:
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._evict_soonest_expiring()
        self._entries[key] = entry
        self.stats.insertions += 1

    def _evict_soonest_expiring(self) -> None:
        victim = min(self._entries, key=lambda k: self._entries[k].expires_at())
        del self._entries[victim]
        self.stats.evictions += 1
