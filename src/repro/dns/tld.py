"""Top-level-domain registry.

The paper's §4.3 analysis groups NXDomains by TLD and contrasts gTLDs
with country-code TLDs.  This module carries a curated registry of the
TLDs that matter for that analysis (the top gTLDs and ccTLDs by
registration volume as of the study window) plus classification
helpers.  The workload generators draw TLDs for synthetic names from
this registry with the popularity weights of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dns.name import DomainName
from repro.errors import ConfigError

#: Generic TLDs, ordered roughly by registration volume.
GENERIC_TLDS: Tuple[str, ...] = (
    "com",
    "net",
    "org",
    "info",
    "xyz",
    "top",
    "site",
    "online",
    "biz",
    "club",
    "shop",
    "vip",
    "work",
    "app",
    "dev",
    "io",
    "me",
    "cc",
    "tv",
    "pro",
    "name",
    "mobi",
    "moda",
    "gq",
    "tk",
    "ml",
    "cf",
    "ga",
)

#: Country-code TLDs, ordered roughly by registration volume.  The top
#: five ccTLDs of the study window (.cn .ru .de .uk .nl per Domain Name
#: Stat) all appear in the paper's top-20 NXDomain TLD list.
COUNTRY_TLDS: Tuple[str, ...] = (
    "cn",
    "ru",
    "de",
    "uk",
    "nl",
    "br",
    "fr",
    "eu",
    "it",
    "au",
    "pl",
    "in",
    "jp",
    "kr",
    "us",
    "ca",
    "es",
    "ch",
    "se",
    "tw",
)

#: Infrastructure / special-use TLDs that the study excludes.
SPECIAL_TLDS: Tuple[str, ...] = ("arpa", "local", "localhost", "internal", "test")


@dataclass(frozen=True)
class TldInfo:
    """Metadata for one TLD."""

    name: str
    is_country_code: bool
    is_special: bool = False


class TldRegistry:
    """Lookup table over the known TLDs.

    >>> registry = TldRegistry.default()
    >>> registry.is_country_code("cn")
    True
    >>> registry.classify(DomainName("example.com")).name
    'com'
    """

    def __init__(self, infos: Iterable[TldInfo]) -> None:
        self._by_name: Dict[str, TldInfo] = {}
        for info in infos:
            if info.name in self._by_name:
                raise ConfigError(f"duplicate TLD {info.name!r}")
            self._by_name[info.name] = info

    @classmethod
    def default(cls) -> "TldRegistry":
        """The registry used throughout the study."""
        infos = [TldInfo(t, is_country_code=False) for t in GENERIC_TLDS]
        infos += [TldInfo(t, is_country_code=True) for t in COUNTRY_TLDS]
        infos += [
            TldInfo(t, is_country_code=False, is_special=True) for t in SPECIAL_TLDS
        ]
        return cls(infos)

    def __contains__(self, tld: str) -> bool:
        return tld.lower() in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def get(self, tld: str) -> Optional[TldInfo]:
        """Metadata for ``tld``, or None when unknown."""
        return self._by_name.get(tld.lower())

    def classify(self, name: DomainName) -> Optional[TldInfo]:
        """Metadata for the TLD of ``name``, or None when unknown."""
        return self.get(name.tld)

    def is_country_code(self, tld: str) -> bool:
        info = self.get(tld)
        return bool(info and info.is_country_code)

    def is_special(self, tld: str) -> bool:
        info = self.get(tld)
        return bool(info and info.is_special)

    def all_tlds(self, include_special: bool = False) -> List[str]:
        """All registered TLD strings, generic first then ccTLDs."""
        return [
            info.name
            for info in self._by_name.values()
            if include_special or not info.is_special
        ]

    def generic_tlds(self) -> List[str]:
        return [
            info.name
            for info in self._by_name.values()
            if not info.is_country_code and not info.is_special
        ]

    def country_tlds(self) -> List[str]:
        return [info.name for info in self._by_name.values() if info.is_country_code]
