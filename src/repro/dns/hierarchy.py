"""A ready-made root → TLD → authoritative hierarchy.

:class:`DnsHierarchy` wires one root server, one server per TLD, and a
shared hosting server for registered second-level domains, exposing
``register_domain`` / ``release_domain`` so the WHOIS registry can make
registration state changes *observable through actual resolution*: a
released domain's delegation disappears from its TLD zone and
subsequent queries yield NXDOMAIN from the TLD server.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.dns.message import ResourceRecord, RRType, make_soa_record
from repro.dns.name import DomainName
from repro.dns.resolver import IterativeResolver, RecursiveResolver
from repro.dns.tld import TldRegistry
from repro.dns.zone import AuthoritativeServer, Zone
from repro.errors import ZoneError


class DnsHierarchy:
    """Root, TLD, and hosting infrastructure for the simulation.

    >>> hierarchy = DnsHierarchy.build(TldRegistry.default())
    >>> hierarchy.register_domain(DomainName("example.com"), "93.184.216.34")
    >>> resolver = hierarchy.make_recursive_resolver()
    >>> resolver.resolve(DomainName("www.example.com"), now=0).addresses()
    ['93.184.216.34']
    """

    def __init__(self) -> None:
        self.root_server = AuthoritativeServer("root")
        self.root_zone = self.root_server.host_zone(Zone(DomainName.root()))
        self.tld_servers: Dict[str, AuthoritativeServer] = {}
        self.tld_zones: Dict[str, Zone] = {}
        self.hosting_server = AuthoritativeServer("hosting")
        self._registry: Dict[str, AuthoritativeServer] = {}
        self._registered: Dict[DomainName, Zone] = {}

    @classmethod
    def build(cls, tlds: TldRegistry) -> "DnsHierarchy":
        """Create the hierarchy with every TLD of ``tlds`` delegated."""
        hierarchy = cls()
        for tld in tlds.all_tlds(include_special=True):
            hierarchy.add_tld(tld)
        return hierarchy

    # -- infrastructure ---------------------------------------------------

    def add_tld(self, tld: str) -> AuthoritativeServer:
        """Stand up a TLD server/zone and delegate it from the root."""
        if tld in self.tld_servers:
            return self.tld_servers[tld]
        apex = DomainName(tld)
        server = AuthoritativeServer(f"tld-{tld}")
        zone = server.host_zone(Zone(apex, make_soa_record(apex, minimum=900)))
        ns_name = apex.child("ns").child("nic")
        self.root_zone.add_delegation(apex, ns_name, glue_a=None)
        self._registry[str(ns_name)] = server
        self.tld_servers[tld] = server
        self.tld_zones[tld] = zone
        return server

    # -- domain registration ----------------------------------------------

    def register_domain(
        self,
        domain: DomainName,
        address: str,
        extra_hosts: Optional[Iterable[str]] = None,
        server: Optional[AuthoritativeServer] = None,
    ) -> Zone:
        """Delegate ``domain`` and host a minimal zone for it.

        The zone answers A for the apex and ``www`` plus any
        ``extra_hosts``; everything else under the apex is NXDOMAIN
        from the domain's own authoritative server.
        """
        if domain.depth != 2:
            raise ZoneError(f"only second-level domains are registrable: {domain}")
        tld = domain.tld
        if tld not in self.tld_zones:
            self.add_tld(tld)
        if domain in self._registered:
            raise ZoneError(f"{domain} is already delegated")
        host = server if server is not None else self.hosting_server
        ns_name = domain.child("ns1")
        zone = host.host_zone(Zone(domain, make_soa_record(domain, minimum=900)))
        zone.add(ResourceRecord(domain, RRType.A, 300, address))
        hosts = ["www"] + list(extra_hosts or [])
        for label in hosts:
            zone.add(ResourceRecord(domain.child(label), RRType.A, 300, address))
        self.tld_zones[tld].add_delegation(domain, ns_name, glue_a=address)
        self._registry[str(ns_name)] = host
        self._registered[domain] = zone
        return zone

    def release_domain(self, domain: DomainName) -> None:
        """Withdraw the delegation: queries now yield NXDOMAIN at the TLD."""
        zone = self._registered.pop(domain, None)
        if zone is None:
            raise ZoneError(f"{domain} is not delegated")
        tld_zone = self.tld_zones[domain.tld]
        tld_zone.remove_name(domain)
        tld_zone.remove_name(domain.child("ns1"))
        self._registry.pop(str(domain.child("ns1")), None)
        self.hosting_server.drop_zone(domain)

    def is_registered(self, domain: DomainName) -> bool:
        return domain in self._registered

    def registered_domains(self) -> List[DomainName]:
        return sorted(self._registered)

    # -- resolvers -------------------------------------------------------

    def make_iterative_resolver(self) -> IterativeResolver:
        return IterativeResolver(self.root_server, self._registry)

    def make_recursive_resolver(
        self, use_negative_cache: bool = True
    ) -> RecursiveResolver:
        return RecursiveResolver(
            self.make_iterative_resolver(), use_negative_cache=use_negative_cache
        )
