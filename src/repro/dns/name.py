"""Domain name model and validation (RFC 1034 §3.5, RFC 1123 §2.1).

:class:`DomainName` is the canonical name type used across the library:
the passive DNS store keys on it, the WHOIS registry registers it, and
the squatting/DGA analyzers consume it.  Names are stored lowercase
(DNS is case-insensitive for comparison) as tuples of labels, root
being the empty tuple.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterator, Tuple

from repro.errors import DomainNameError

MAX_LABEL_LENGTH = 63
#: RFC 1035 limits the wire encoding to 255 octets, which bounds the
#: presentation form (without trailing dot) at 253 characters.
MAX_NAME_LENGTH = 253

# LDH (letters, digits, hyphen) labels; hyphen not leading/trailing.
# Underscore is additionally tolerated as first character because
# service labels (_dmarc, _acme-challenge) appear in real query data.
_LABEL_RE = re.compile(r"^(?:[a-z0-9_]|[a-z0-9_][a-z0-9-]*[a-z0-9])$")


@total_ordering
class DomainName:
    """An absolute DNS domain name.

    >>> name = DomainName("www.Example.COM")
    >>> name.labels
    ('www', 'example', 'com')
    >>> name.tld
    'com'
    >>> name.registered_domain()
    DomainName('example.com')
    """

    __slots__ = ("_labels",)

    def __init__(self, text: object) -> None:
        if isinstance(text, DomainName):
            self._labels: Tuple[str, ...] = text._labels
            return
        if not isinstance(text, str):
            raise DomainNameError(f"domain name must be str, got {type(text)!r}")
        self._labels = _parse(text)

    @classmethod
    def from_labels(cls, labels: Tuple[str, ...]) -> "DomainName":
        """Build a name from already-validated labels (internal fast path)."""
        name = cls.__new__(cls)
        name._labels = tuple(label.lower() for label in labels)
        _validate(name._labels)
        return name

    @classmethod
    def root(cls) -> "DomainName":
        """The DNS root (empty name)."""
        name = cls.__new__(cls)
        name._labels = ()
        return name

    # -- structure ----------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        """Labels from leftmost (host) to rightmost (TLD)."""
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    @property
    def tld(self) -> str:
        """Rightmost label, or ``""`` for the root."""
        return self._labels[-1] if self._labels else ""

    @property
    def sld(self) -> str:
        """Second-level label, or ``""`` if the name has fewer than 2 labels."""
        return self._labels[-2] if len(self._labels) >= 2 else ""

    def registered_domain(self) -> "DomainName":
        """The registrable domain: ``<sld>.<tld>``.

        The paper's analyses operate on registered domains under TLDs
        and intentionally exclude deeper subdomains (§4.3); this is the
        projection they use.
        """
        if len(self._labels) < 2:
            return self
        return DomainName.from_labels(self._labels[-2:])

    def parent(self) -> "DomainName":
        """The name with its leftmost label removed (root's parent is root)."""
        if not self._labels:
            return self
        return DomainName.from_labels(self._labels[1:])

    def child(self, label: str) -> "DomainName":
        """Prepend ``label``, producing a subdomain of this name."""
        return DomainName.from_labels((label.lower(),) + self._labels)

    def is_subdomain_of(self, other: "DomainName") -> bool:
        """True when ``self`` is equal to or underneath ``other``."""
        if len(other._labels) > len(self._labels):
            return False
        if not other._labels:
            return True
        return self._labels[-len(other._labels) :] == other._labels

    def ancestors(self) -> Iterator["DomainName"]:
        """Yield parent, grandparent, ... down to (and including) the root."""
        current = self
        while not current.is_root:
            current = current.parent()
            yield current

    @property
    def depth(self) -> int:
        """Number of labels (root has depth 0)."""
        return len(self._labels)

    def is_reverse_lookup(self) -> bool:
        """True for names under in-addr.arpa / ip6.arpa.

        Jung et al. found most NXDomain responses come from reverse IP
        lookups; the paper excludes them (§2), and the passive DNS
        pipeline uses this predicate to do the same.
        """
        return (
            self._labels[-2:] == ("in-addr", "arpa")
            or self._labels[-2:] == ("ip6", "arpa")
        )

    def is_idn(self) -> bool:
        """True when any label is punycode (``xn--`` prefixed)."""
        return any(label.startswith("xn--") for label in self._labels)

    # -- dunder plumbing ----------------------------------------------

    def __str__(self) -> str:
        return ".".join(self._labels) if self._labels else "."

    def __repr__(self) -> str:
        return f"DomainName({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DomainName):
            return self._labels == other._labels
        return NotImplemented

    def __lt__(self, other: "DomainName") -> bool:
        if not isinstance(other, DomainName):
            return NotImplemented
        # Canonical DNS ordering compares names right-to-left by label.
        return tuple(reversed(self._labels)) < tuple(reversed(other._labels))

    def __hash__(self) -> int:
        return hash(self._labels)

    def __len__(self) -> int:
        return len(str(self)) if self._labels else 0


def _parse(text: str) -> Tuple[str, ...]:
    stripped = text.strip()
    if stripped in (".", ""):
        if stripped == ".":
            return ()
        raise DomainNameError("empty string is not a domain name (use '.')")
    if stripped.endswith("."):
        stripped = stripped[:-1]
    labels = tuple(label.lower() for label in stripped.split("."))
    _validate(labels)
    return labels


def _validate(labels: Tuple[str, ...]) -> None:
    total = sum(len(label) for label in labels) + max(len(labels) - 1, 0)
    if total > MAX_NAME_LENGTH:
        raise DomainNameError(
            f"name exceeds {MAX_NAME_LENGTH} characters: {total}"
        )
    for label in labels:
        if not label:
            raise DomainNameError("empty label (consecutive dots)")
        if len(label) > MAX_LABEL_LENGTH:
            raise DomainNameError(
                f"label exceeds {MAX_LABEL_LENGTH} characters: {label!r}"
            )
        if not _LABEL_RE.match(label):
            raise DomainNameError(f"label contains invalid characters: {label!r}")


def reverse_name_for_ipv4(address: str) -> DomainName:
    """The in-addr.arpa name for a dotted-quad IPv4 address.

    >>> str(reverse_name_for_ipv4("93.184.216.34"))
    '34.216.184.93.in-addr.arpa'
    """
    octets = address.split(".")
    if len(octets) != 4 or not all(o.isdigit() and 0 <= int(o) <= 255 for o in octets):
        raise DomainNameError(f"not an IPv4 address: {address!r}")
    return DomainName(".".join(reversed(octets)) + ".in-addr.arpa")
