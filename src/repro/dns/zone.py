"""Zones and authoritative servers (RFC 1034 §4.3.2 answer algorithm).

A :class:`Zone` is the record database for one cut of the namespace; an
:class:`AuthoritativeServer` hosts one or more zones and answers
queries with the correct semantics for the three cases the paper's
measurement hinges on:

- **answer** — the name and type exist;
- **NODATA** — the name exists (possibly only as an empty non-terminal)
  but lacks the requested type: NOERROR with an empty answer section;
- **NXDOMAIN** — the name does not exist at all: RCODE 3 with the
  zone's SOA in the authority section so resolvers can negatively
  cache it (RFC 2308).

Delegations (NS records below the apex) produce referrals, which the
iterative resolver follows downward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dns.message import (
    DnsMessage,
    RCode,
    ResourceRecord,
    RRType,
    make_soa_record,
)
from repro.dns.name import DomainName
from repro.errors import ZoneError


class Zone:
    """The authoritative record set for one zone cut.

    >>> zone = Zone(DomainName("example.com"))
    >>> zone.add(ResourceRecord(DomainName("www.example.com"), RRType.A, 300, "93.184.216.34"))
    >>> zone.lookup(DomainName("www.example.com"), RRType.A)[0].rdata
    '93.184.216.34'
    """

    def __init__(self, apex: DomainName, soa: Optional[ResourceRecord] = None) -> None:
        if apex.is_root and soa is None:
            # The root zone gets a root SOA by default.
            soa = make_soa_record(apex)
        self.apex = apex
        self.soa = soa if soa is not None else make_soa_record(apex)
        if self.soa.rtype != RRType.SOA:
            raise ZoneError("zone SOA record must have type SOA")
        self._records: Dict[Tuple[DomainName, RRType], List[ResourceRecord]] = {}
        #: Every name that exists in the zone, including empty
        #: non-terminals implied by deeper records.
        self._names: Set[DomainName] = {apex}

    # -- mutation -------------------------------------------------------

    def add(self, record: ResourceRecord) -> None:
        """Insert a record; the owner must fall inside this zone."""
        if not record.name.is_subdomain_of(self.apex):
            raise ZoneError(f"{record.name} is outside zone {self.apex}")
        self._records.setdefault((record.name, record.rtype), []).append(record)
        # Register the owner and all implied empty non-terminals.
        name = record.name
        while not name.is_root and name not in self._names:
            self._names.add(name)
            if name == self.apex:
                break
            name = name.parent()

    def add_delegation(
        self, child: DomainName, nameserver: DomainName, glue_a: Optional[str] = None
    ) -> None:
        """Delegate ``child`` to ``nameserver`` with optional glue."""
        if child == self.apex:
            raise ZoneError("cannot delegate the zone apex to itself")
        self.add(ResourceRecord(child, RRType.NS, 172_800, str(nameserver)))
        if glue_a is not None:
            self.add(ResourceRecord(nameserver, RRType.A, 172_800, glue_a))

    def remove_name(self, name: DomainName) -> int:
        """Delete all records owned by ``name``; returns how many.

        Used by the registry when a domain is released: its delegation
        is withdrawn from the parent zone, after which queries for it
        yield NXDOMAIN.
        """
        removed = 0
        for key in [k for k in self._records if k[0] == name]:
            removed += len(self._records.pop(key))
        if name in self._names and name != self.apex:
            still_referenced = any(
                owner.is_subdomain_of(name) for owner, _ in self._records
            )
            if not still_referenced:
                self._names.discard(name)
        return removed

    # -- queries ----------------------------------------------------------

    def lookup(self, name: DomainName, rtype: RRType) -> List[ResourceRecord]:
        """Exact-match records for (name, type); CNAME not chased here."""
        if rtype == RRType.ANY:
            return [
                rr
                for (owner, _), records in self._records.items()
                if owner == name
                for rr in records
            ]
        return list(self._records.get((name, rtype), []))

    def name_exists(self, name: DomainName) -> bool:
        """True when the name exists in this zone (incl. empty non-terminals)."""
        return name in self._names

    def find_delegation(self, name: DomainName) -> Optional[DomainName]:
        """The deepest zone cut at or above ``name`` (below the apex)."""
        candidate = name
        best: Optional[DomainName] = None
        while candidate.is_subdomain_of(self.apex) and candidate != self.apex:
            if self._records.get((candidate, RRType.NS)):
                best = candidate
            candidate = candidate.parent()
        return best

    def delegations(self) -> Iterable[DomainName]:
        """All delegated child cuts of this zone."""
        return sorted(
            {owner for (owner, rtype) in self._records if rtype == RRType.NS and owner != self.apex}
        )

    def records(self) -> Iterable[ResourceRecord]:
        """All records in canonical (owner, type) order, SOA excluded."""
        for (owner, rtype) in sorted(
            self._records, key=lambda key: (key[0], int(key[1]))
        ):
            yield from self._records[(owner, rtype)]

    def record_count(self) -> int:
        return sum(len(records) for records in self._records.values())

    def __contains__(self, name: DomainName) -> bool:
        return self.name_exists(name)

    def __repr__(self) -> str:
        return f"Zone({str(self.apex)!r}, records={self.record_count()})"


@dataclass
class ServerStats:
    """Per-server query accounting, used by resolver-path assertions."""

    queries: int = 0
    answers: int = 0
    referrals: int = 0
    nxdomains: int = 0
    nodatas: int = 0


class AuthoritativeServer:
    """A nameserver hosting one or more zones.

    The answer algorithm follows RFC 1034 §4.3.2 restricted to the
    in-bailiwick, single-question case the simulation needs.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._zones: Dict[DomainName, Zone] = {}
        self.stats = ServerStats()

    def host_zone(self, zone: Zone) -> Zone:
        """Attach ``zone`` to this server (replacing any same-apex zone)."""
        self._zones[zone.apex] = zone
        return zone

    def drop_zone(self, apex: DomainName) -> None:
        self._zones.pop(apex, None)

    def zone_for(self, name: DomainName) -> Optional[Zone]:
        """The most specific hosted zone enclosing ``name``."""
        best: Optional[Zone] = None
        for apex, zone in self._zones.items():
            if name.is_subdomain_of(apex):
                if best is None or apex.depth > best.apex.depth:
                    best = zone
        return best

    def handle_query(self, query: DnsMessage) -> DnsMessage:
        """Answer one query with answer / referral / NODATA / NXDOMAIN."""
        self.stats.queries += 1
        question = query.question
        zone = self.zone_for(question.name)
        if zone is None:
            return query.make_response(rcode=RCode.REFUSED)

        # Delegation below this zone?  Refer the resolver downward.
        cut = zone.find_delegation(question.name)
        if cut is not None:
            self.stats.referrals += 1
            ns_records = zone.lookup(cut, RRType.NS)
            glue = [
                rr
                for ns in ns_records
                for rr in zone.lookup(DomainName(ns.rdata), RRType.A)
            ]
            return query.make_response(
                authorities=ns_records, additionals=glue, authoritative=False
            )

        answers = zone.lookup(question.name, question.rtype)
        if not answers and question.rtype != RRType.CNAME:
            # Chase an in-zone CNAME one step; the resolver restarts.
            answers = zone.lookup(question.name, RRType.CNAME)
        if answers:
            self.stats.answers += 1
            return query.make_response(answers=answers, authoritative=True)

        if zone.name_exists(question.name):
            self.stats.nodatas += 1
            return query.make_response(
                authorities=[zone.soa], authoritative=True
            )

        self.stats.nxdomains += 1
        return query.make_response(
            rcode=RCode.NXDOMAIN, authorities=[zone.soa], authoritative=True
        )

    def __repr__(self) -> str:
        return f"AuthoritativeServer({self.name!r}, zones={len(self._zones)})"
