"""NXDomain hijacking (§7, after Weaver et al. and Chung et al.).

Some ISPs monetize NXDomain responses: the resolver intercepts the
Name Error and returns the address of an advertising server instead.
Chung et al. measured ~4.8% of NXDomain responses hijacked in the
wild.  The paper discusses this as a measurement-validity threat — a
hijacked response never reaches the passive DNS channel as an
NXDomain — and argues the effect is small at that rate.

:class:`HijackingResolver` wraps any recursive resolver with the
rewriting behaviour so the ablation bench can quantify exactly how
much of the measured NXDomain volume a given hijack rate hides.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.dns.message import RCode, ResourceRecord, RRType
from repro.dns.name import DomainName
from repro.dns.resolver import RecursiveResolver, ResolutionResult
from repro.errors import ConfigError

#: The in-the-wild hijack rate Chung et al. report.
WILD_HIJACK_RATE = 0.048


@dataclass
class HijackStats:
    """What the hijacking layer did."""

    resolutions: int = 0
    nxdomains_seen: int = 0
    nxdomains_hijacked: int = 0

    @property
    def hijack_fraction(self) -> float:
        if self.nxdomains_seen == 0:
            return 0.0
        return self.nxdomains_hijacked / self.nxdomains_seen


class HijackingResolver:
    """A resolver whose NXDomain responses may be rewritten to ads.

    ``hijack_rate`` is the per-response probability of rewriting;
    hijacking is applied to fresh NXDOMAIN outcomes *and* negative
    cache hits (the ISP rewrites whatever leaves the resolver).
    """

    def __init__(
        self,
        inner: RecursiveResolver,
        rng: np.random.Generator,
        hijack_rate: float = WILD_HIJACK_RATE,
        ad_server_address: str = "198.18.255.1",
        ad_ttl: int = 60,
    ) -> None:
        if not 0.0 <= hijack_rate <= 1.0:
            raise ConfigError("hijack_rate must lie in [0, 1]")
        self.inner = inner
        self.rng = rng
        self.hijack_rate = hijack_rate
        self.ad_server_address = ad_server_address
        self.ad_ttl = ad_ttl
        self.stats = HijackStats()

    def resolve(
        self, qname: DomainName, now: int, rtype: RRType = RRType.A
    ) -> ResolutionResult:
        result = self.inner.resolve(qname, now, rtype)
        self.stats.resolutions += 1
        if not result.is_nxdomain:
            return result
        self.stats.nxdomains_seen += 1
        if self.rng.random() >= self.hijack_rate:
            return result
        self.stats.nxdomains_hijacked += 1
        return self._rewrite(result)

    def _rewrite(self, result: ResolutionResult) -> ResolutionResult:
        """Fabricate a NOERROR answer pointing at the ad server."""
        forged = ResourceRecord(
            result.qname, RRType.A, self.ad_ttl, self.ad_server_address
        )
        return ResolutionResult(
            qname=result.qname,
            rtype=result.rtype,
            rcode=RCode.NOERROR,
            answers=[forged],
            negative_ttl=None,
            from_cache=result.from_cache,
            trace=result.trace,
        )

    def is_ad_answer(self, result: ResolutionResult) -> bool:
        """Detects the forged answer (what NXDomain-wildcard auditors do)."""
        return any(
            rr.rtype == RRType.A and rr.rdata == self.ad_server_address
            for rr in result.answers
        )
