"""DNS wire format codec (RFC 1035 §4.1) with name compression.

The codec is exercised by the sensor pipeline: passive DNS sensors in
:mod:`repro.passivedns` observe responses as wire-format blobs, decode
them, and emit channel records — mirroring how SIE sensors sit on the
wire.  Encoding/decoding round-trips are property-tested.

Supported RDATA encodings: A, AAAA, NS, CNAME, PTR, MX, TXT, SOA.
Unknown types round-trip as opaque hex blobs.
"""

from __future__ import annotations

import ipaddress
import struct
from typing import Dict, List, Tuple

from repro.dns.message import (
    DnsMessage,
    OpCode,
    Question,
    RCode,
    ResourceRecord,
    RRClass,
    RRType,
    SoaData,
)
from repro.dns.name import DomainName
from repro.errors import WireFormatError

_MAX_POINTER_OFFSET = 0x3FFF
_POINTER_MASK = 0xC0


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


class _Encoder:
    def __init__(self) -> None:
        self.buffer = bytearray()
        # Maps label tuples to the offset of their first occurrence so
        # later occurrences can be emitted as compression pointers.
        self._offsets: Dict[Tuple[str, ...], int] = {}

    def pack(self, fmt: str, *values: int) -> None:
        self.buffer += struct.pack(fmt, *values)

    def write_name(self, name: DomainName) -> None:
        labels = name.labels
        index = 0
        while index < len(labels):
            suffix = labels[index:]
            offset = self._offsets.get(suffix)
            if offset is not None and offset <= _MAX_POINTER_OFFSET:
                self.pack("!H", 0xC000 | offset)
                return
            if len(self.buffer) <= _MAX_POINTER_OFFSET:
                self._offsets[suffix] = len(self.buffer)
            label = labels[index]
            raw = label.encode("ascii")
            self.buffer.append(len(raw))
            self.buffer += raw
            index += 1
        self.buffer.append(0)

    def write_name_uncompressed(self, name: DomainName) -> bytes:
        """Encode a name standalone (used inside RDATA length accounting)."""
        out = bytearray()
        for label in name.labels:
            raw = label.encode("ascii")
            out.append(len(raw))
            out += raw
        out.append(0)
        return bytes(out)


def _encode_rdata(encoder: _Encoder, rr: ResourceRecord) -> None:
    """Append the RDLENGTH+RDATA of ``rr`` to the encoder buffer."""
    if rr.rtype == RRType.A:
        try:
            raw = ipaddress.IPv4Address(rr.rdata).packed
        except ValueError as exc:
            raise WireFormatError(f"bad A rdata {rr.rdata!r}") from exc
    elif rr.rtype == RRType.AAAA:
        try:
            raw = ipaddress.IPv6Address(rr.rdata).packed
        except ValueError as exc:
            raise WireFormatError(f"bad AAAA rdata {rr.rdata!r}") from exc
    elif rr.rtype in (RRType.NS, RRType.CNAME, RRType.PTR):
        raw = encoder.write_name_uncompressed(DomainName(rr.rdata))
    elif rr.rtype == RRType.MX:
        pref_text, _, target = rr.rdata.partition(" ")
        try:
            pref = int(pref_text)
        except ValueError as exc:
            raise WireFormatError(f"bad MX rdata {rr.rdata!r}") from exc
        raw = struct.pack("!H", pref) + encoder.write_name_uncompressed(
            DomainName(target)
        )
    elif rr.rtype == RRType.TXT:
        payload = rr.rdata.encode("utf-8")
        chunks = [payload[i : i + 255] for i in range(0, len(payload), 255)] or [b""]
        raw = b"".join(bytes([len(c)]) + c for c in chunks)
    elif rr.rtype == RRType.SOA:
        soa = rr.soa
        if soa is None:
            raise WireFormatError("SOA record missing structured data")
        raw = (
            encoder.write_name_uncompressed(soa.mname)
            + encoder.write_name_uncompressed(soa.rname)
            + struct.pack(
                "!IIIII", soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
            )
        )
    else:
        try:
            raw = bytes.fromhex(rr.rdata)
        except ValueError as exc:
            raise WireFormatError(
                f"unsupported rtype {rr.rtype} needs hex rdata"
            ) from exc
    if len(raw) > 0xFFFF:
        raise WireFormatError("RDATA exceeds 65535 octets")
    encoder.pack("!H", len(raw))
    encoder.buffer += raw


def _encode_record(encoder: _Encoder, rr: ResourceRecord) -> None:
    encoder.write_name(rr.name)
    encoder.pack("!HHI", int(rr.rtype), int(rr.rclass), rr.ttl)
    _encode_rdata(encoder, rr)


def encode_message(message: DnsMessage) -> bytes:
    """Serialize ``message`` to RFC 1035 wire format."""
    encoder = _Encoder()
    flags = 0
    if message.is_response:
        flags |= 0x8000
    flags |= (int(message.opcode) & 0xF) << 11
    if message.authoritative:
        flags |= 0x0400
    if message.truncated:
        flags |= 0x0200
    if message.recursion_desired:
        flags |= 0x0100
    if message.recursion_available:
        flags |= 0x0080
    flags |= int(message.rcode) & 0xF
    encoder.pack(
        "!HHHHHH",
        message.msg_id & 0xFFFF,
        flags,
        len(message.questions),
        len(message.answers),
        len(message.authorities),
        len(message.additionals),
    )
    for question in message.questions:
        encoder.write_name(question.name)
        encoder.pack("!HH", int(question.rtype), int(question.rclass))
    for section in (message.answers, message.authorities, message.additionals):
        for rr in section:
            _encode_record(encoder, rr)
    return bytes(encoder.buffer)


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


class _Decoder:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def need(self, count: int) -> None:
        if self.pos + count > len(self.data):
            raise WireFormatError(
                f"message truncated at offset {self.pos} (need {count} bytes)"
            )

    def unpack(self, fmt: str) -> Tuple[int, ...]:
        size = struct.calcsize(fmt)
        self.need(size)
        values = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return values

    def read_bytes(self, count: int) -> bytes:
        self.need(count)
        raw = self.data[self.pos : self.pos + count]
        self.pos += count
        return raw

    def read_name(self) -> DomainName:
        labels, self.pos = self._read_name_at(self.pos, set())
        return DomainName.from_labels(tuple(labels)) if labels else DomainName.root()

    def _read_name_at(self, pos: int, seen: set) -> Tuple[List[str], int]:
        labels: List[str] = []
        while True:
            if pos >= len(self.data):
                raise WireFormatError("name runs past end of message")
            length = self.data[pos]
            if length & _POINTER_MASK == _POINTER_MASK:
                if pos + 1 >= len(self.data):
                    raise WireFormatError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self.data[pos + 1]
                if target in seen:
                    raise WireFormatError("compression pointer loop")
                seen.add(target)
                tail, _ = self._read_name_at(target, seen)
                return labels + tail, pos + 2
            if length & _POINTER_MASK:
                raise WireFormatError(f"reserved label type 0x{length:02x}")
            pos += 1
            if length == 0:
                return labels, pos
            if pos + length > len(self.data):
                raise WireFormatError("label runs past end of message")
            try:
                labels.append(
                    self.data[pos : pos + length].decode("ascii").lower()
                )
            except UnicodeDecodeError as exc:
                raise WireFormatError("non-ASCII label") from exc
            pos += length


def _decode_rdata(
    decoder: _Decoder, rtype: RRType, rdlength: int
) -> Tuple[str, "SoaData | None"]:
    end = decoder.pos + rdlength
    soa = None
    if rtype == RRType.A:
        rdata = str(ipaddress.IPv4Address(decoder.read_bytes(4)))
    elif rtype == RRType.AAAA:
        rdata = str(ipaddress.IPv6Address(decoder.read_bytes(16)))
    elif rtype in (RRType.NS, RRType.CNAME, RRType.PTR):
        rdata = str(decoder.read_name())
    elif rtype == RRType.MX:
        (pref,) = decoder.unpack("!H")
        rdata = f"{pref} {decoder.read_name()}"
    elif rtype == RRType.TXT:
        parts = []
        while decoder.pos < end:
            (length,) = decoder.unpack("!B")
            parts.append(decoder.read_bytes(length).decode("utf-8", "replace"))
        rdata = "".join(parts)
    elif rtype == RRType.SOA:
        mname = decoder.read_name()
        rname = decoder.read_name()
        serial, refresh, retry, expire, minimum = decoder.unpack("!IIIII")
        soa = SoaData(mname, rname, serial, refresh, retry, expire, minimum)
        rdata = f"{mname} {rname} {serial} {refresh} {retry} {expire} {minimum}"
    else:
        rdata = decoder.read_bytes(rdlength).hex()
    if decoder.pos != end:
        raise WireFormatError(
            f"RDATA length mismatch for {rtype}: expected end {end}, at {decoder.pos}"
        )
    return rdata, soa


def _decode_record(decoder: _Decoder) -> ResourceRecord:
    name = decoder.read_name()
    rtype_raw, rclass_raw, ttl = decoder.unpack("!HHI")
    (rdlength,) = decoder.unpack("!H")
    try:
        rtype = RRType(rtype_raw)
    except ValueError:
        # Unknown type: keep the payload opaque.
        raw = decoder.read_bytes(rdlength)
        return ResourceRecord(name, RRType.TXT, ttl, raw.hex())
    rdata, soa = _decode_rdata(decoder, rtype, rdlength)
    return ResourceRecord(
        name, rtype, ttl, rdata, rclass=RRClass(rclass_raw), soa=soa
    )


def decode_message(data: bytes) -> DnsMessage:
    """Parse RFC 1035 wire format into a :class:`DnsMessage`."""
    decoder = _Decoder(data)
    msg_id, flags, qcount, ancount, nscount, arcount = decoder.unpack("!HHHHHH")
    try:
        opcode = OpCode((flags >> 11) & 0xF)
    except ValueError as exc:
        raise WireFormatError(f"unsupported opcode {(flags >> 11) & 0xF}") from exc
    try:
        rcode = RCode(flags & 0xF)
    except ValueError as exc:
        raise WireFormatError(f"unsupported rcode {flags & 0xF}") from exc
    message = DnsMessage(
        msg_id=msg_id,
        is_response=bool(flags & 0x8000),
        opcode=opcode,
        authoritative=bool(flags & 0x0400),
        truncated=bool(flags & 0x0200),
        recursion_desired=bool(flags & 0x0100),
        recursion_available=bool(flags & 0x0080),
        rcode=rcode,
    )
    for _ in range(qcount):
        name = decoder.read_name()
        rtype_raw, rclass_raw = decoder.unpack("!HH")
        try:
            rtype = RRType(rtype_raw)
            rclass = RRClass(rclass_raw)
        except ValueError as exc:
            raise WireFormatError(
                f"unsupported question type/class {rtype_raw}/{rclass_raw}"
            ) from exc
        message.questions.append(Question(name, rtype, rclass))
    for _ in range(ancount):
        message.answers.append(_decode_record(decoder))
    for _ in range(nscount):
        message.authorities.append(_decode_record(decoder))
    for _ in range(arcount):
        message.additionals.append(_decode_record(decoder))
    if decoder.pos != len(data):
        raise WireFormatError(
            f"{len(data) - decoder.pos} trailing bytes after message"
        )
    return message
