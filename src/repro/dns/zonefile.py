"""RFC 1035 master-file ("zone file") parsing and serialization.

Lets zones move in and out of the standard text format:

    $ORIGIN example.com.
    $TTL 3600
    @       IN SOA   ns1.example.com. hostmaster.example.com. (
                      1 7200 3600 1209600 3600 )
    @       IN NS    ns1.example.com.
    www     IN A     93.184.216.34

Supported: ``$ORIGIN`` / ``$TTL`` directives, ``@`` for the origin,
relative and absolute owner names, per-record TTLs, comments,
parenthesized multi-line records (the SOA idiom), and the record types
of :class:`repro.dns.message.RRType`.  Unsupported syntax raises
:class:`~repro.errors.ZoneError` with a line number.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dns.message import ResourceRecord, RRClass, RRType, SoaData
from repro.dns.name import DomainName
from repro.dns.zone import Zone
from repro.errors import DomainNameError, ZoneError

DEFAULT_TTL = 3600


def parse_zone_file(text: str, origin: Optional[DomainName] = None) -> Zone:
    """Parse master-file text into a :class:`Zone`.

    ``origin`` seeds ``$ORIGIN`` when the file doesn't declare one
    before its first record.
    """
    records: List[ResourceRecord] = []
    soa_record: Optional[ResourceRecord] = None
    current_origin = origin
    default_ttl = DEFAULT_TTL
    last_owner: Optional[DomainName] = None

    for line_number, logical in _logical_lines(text):
        tokens = logical.split()
        if not tokens:
            continue
        directive = tokens[0].upper()
        if directive == "$ORIGIN":
            if len(tokens) != 2:
                raise ZoneError(f"line {line_number}: $ORIGIN needs one name")
            current_origin = _parse_name(tokens[1], None, line_number)
            continue
        if directive == "$TTL":
            if len(tokens) != 2 or not tokens[1].isdigit():
                raise ZoneError(f"line {line_number}: $TTL needs an integer")
            default_ttl = int(tokens[1])
            continue
        if directive.startswith("$"):
            raise ZoneError(f"line {line_number}: unsupported directive {tokens[0]}")

        owner, tokens = _parse_owner(
            tokens, logical, current_origin, last_owner, line_number
        )
        last_owner = owner
        ttl, rrclass, rtype_token, rdata_tokens = _parse_fields(
            tokens, default_ttl, line_number
        )
        try:
            rtype = RRType[rtype_token.upper()]
        except KeyError:
            raise ZoneError(
                f"line {line_number}: unsupported record type {rtype_token!r}"
            ) from None
        record = _build_record(
            owner, rtype, ttl, rrclass, rdata_tokens, current_origin, line_number
        )
        if rtype == RRType.SOA:
            if soa_record is not None:
                raise ZoneError(f"line {line_number}: duplicate SOA")
            soa_record = record
        else:
            records.append(record)

    if current_origin is None:
        raise ZoneError("zone file has no $ORIGIN and no origin was supplied")
    if soa_record is None:
        raise ZoneError(f"zone {current_origin} has no SOA record")
    zone = Zone(current_origin, soa_record)
    for record in records:
        zone.add(record)
    return zone


def serialize_zone(zone: Zone) -> str:
    """Render a zone back to master-file text (parse round-trips)."""
    lines = [f"$ORIGIN {zone.apex}.", f"$TTL {DEFAULT_TTL}", ""]
    lines.append(_format_record(zone.soa, zone.apex))
    for record in zone.records():
        if record.rtype != RRType.SOA:
            lines.append(_format_record(record, zone.apex))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _logical_lines(text: str):
    """Comment-stripped lines with parentheses groups joined."""
    buffer = ""
    depth = 0
    start_line = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        depth += line.count("(") - line.count(")")
        if depth < 0:
            raise ZoneError(f"line {number}: unbalanced ')'")
        if buffer:
            buffer += " " + line
        else:
            buffer = line
            start_line = number
        if depth == 0:
            if buffer.strip():
                yield start_line, buffer.replace("(", " ").replace(")", " ")
            buffer = ""
    if depth != 0:
        raise ZoneError(f"line {start_line}: unclosed '('")


def _strip_comment(line: str) -> str:
    index = line.find(";")
    return line if index == -1 else line[:index]


def _parse_owner(
    tokens: List[str],
    logical: str,
    origin: Optional[DomainName],
    last_owner: Optional[DomainName],
    line_number: int,
) -> Tuple[DomainName, List[str]]:
    # A line starting with whitespace inherits the previous owner.
    if logical[:1].isspace():
        if last_owner is None:
            raise ZoneError(f"line {line_number}: no previous owner to inherit")
        return last_owner, tokens
    owner_token, rest = tokens[0], tokens[1:]
    return _parse_name(owner_token, origin, line_number), rest


def _parse_name(
    token: str, origin: Optional[DomainName], line_number: int
) -> DomainName:
    try:
        if token == "@":
            if origin is None:
                raise ZoneError(f"line {line_number}: '@' with no $ORIGIN")
            return origin
        if token.endswith("."):
            return DomainName(token)
        if origin is None:
            raise ZoneError(
                f"line {line_number}: relative name {token!r} with no $ORIGIN"
            )
        return DomainName(f"{token}.{origin}")
    except DomainNameError as exc:
        raise ZoneError(f"line {line_number}: bad name {token!r}: {exc}") from exc


def _parse_fields(
    tokens: List[str], default_ttl: int, line_number: int
) -> Tuple[int, RRClass, str, List[str]]:
    """[TTL] [class] type rdata... in either TTL/class order."""
    ttl = default_ttl
    rrclass = RRClass.IN
    index = 0
    for _ in range(2):
        if index < len(tokens) and tokens[index].isdigit():
            ttl = int(tokens[index])
            index += 1
        elif index < len(tokens) and tokens[index].upper() in ("IN", "ANY"):
            rrclass = RRClass[tokens[index].upper()]
            index += 1
    if index >= len(tokens):
        raise ZoneError(f"line {line_number}: missing record type")
    return ttl, rrclass, tokens[index], tokens[index + 1 :]


def _build_record(
    owner: DomainName,
    rtype: RRType,
    ttl: int,
    rrclass: RRClass,
    rdata_tokens: List[str],
    origin: Optional[DomainName],
    line_number: int,
) -> ResourceRecord:
    if rtype == RRType.SOA:
        if len(rdata_tokens) != 7:
            raise ZoneError(
                f"line {line_number}: SOA needs 7 fields, got {len(rdata_tokens)}"
            )
        mname = _parse_name(rdata_tokens[0], origin, line_number)
        rname = _parse_name(rdata_tokens[1], origin, line_number)
        try:
            numbers = [int(t) for t in rdata_tokens[2:]]
        except ValueError:
            raise ZoneError(f"line {line_number}: non-numeric SOA timers") from None
        soa = SoaData(mname, rname, *numbers)
        rdata = (
            f"{mname} {rname} {soa.serial} {soa.refresh} {soa.retry} "
            f"{soa.expire} {soa.minimum}"
        )
        return ResourceRecord(owner, rtype, ttl, rdata, rrclass, soa=soa)
    if not rdata_tokens:
        raise ZoneError(f"line {line_number}: missing RDATA")
    if rtype in (RRType.NS, RRType.CNAME, RRType.PTR):
        target = _parse_name(rdata_tokens[0], origin, line_number)
        return ResourceRecord(owner, rtype, ttl, str(target), rrclass)
    if rtype == RRType.MX:
        if len(rdata_tokens) != 2 or not rdata_tokens[0].isdigit():
            raise ZoneError(f"line {line_number}: MX needs 'pref target'")
        target = _parse_name(rdata_tokens[1], origin, line_number)
        return ResourceRecord(
            owner, rtype, ttl, f"{rdata_tokens[0]} {target}", rrclass
        )
    if rtype == RRType.TXT:
        joined = " ".join(rdata_tokens)
        if joined.startswith('"') and joined.endswith('"') and len(joined) >= 2:
            joined = joined[1:-1]
        return ResourceRecord(owner, rtype, ttl, joined, rrclass)
    # A / AAAA and anything address-like: single token.
    return ResourceRecord(owner, rtype, ttl, rdata_tokens[0], rrclass)


def _format_record(record: ResourceRecord, apex: DomainName) -> str:
    owner = _relative_owner(record.name, apex)
    if record.rtype in (RRType.NS, RRType.CNAME, RRType.PTR):
        rdata = record.rdata.rstrip(".") + "."
    elif record.rtype == RRType.MX:
        pref, _, target = record.rdata.partition(" ")
        rdata = f"{pref} {target.rstrip('.')}."
    elif record.rtype == RRType.SOA and record.soa is not None:
        soa = record.soa
        rdata = (
            f"{soa.mname}. {soa.rname}. ( {soa.serial} {soa.refresh} "
            f"{soa.retry} {soa.expire} {soa.minimum} )"
        )
    elif record.rtype == RRType.TXT:
        rdata = f'"{record.rdata}"'
    else:
        rdata = record.rdata
    return (
        f"{owner:<24} {record.ttl:>6} {record.rclass.name} "
        f"{record.rtype.name:<5} {rdata}"
    )


def _relative_owner(name: DomainName, apex: DomainName) -> str:
    if name == apex:
        return "@"
    if name.is_subdomain_of(apex) and apex.depth > 0:
        relative_labels = name.labels[: name.depth - apex.depth]
        return ".".join(relative_labels)
    return f"{name}."
