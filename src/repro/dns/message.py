"""DNS message, question, and resource-record model (RFC 1035 §4).

The model keeps to the subset exercised by the study: queries and
responses for A/AAAA/NS/SOA/CNAME/TXT/PTR/MX records, response codes
(NOERROR, NXDOMAIN, SERVFAIL, ...), and the header flags involved in
iterative vs recursive resolution.  The distinction the paper leans on
— an NXDOMAIN response versus a NOERROR response with an empty answer
section (NODATA) — is encoded in :meth:`DnsMessage.is_nxdomain` and
:meth:`DnsMessage.is_nodata`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.dns.name import DomainName
from repro.errors import ConfigError


class RRType(enum.IntEnum):
    """Resource record types (subset of the IANA registry)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    ANY = 255


class RRClass(enum.IntEnum):
    """Resource record classes; the study only uses IN."""

    IN = 1
    ANY = 255


class RCode(enum.IntEnum):
    """Response codes (RFC 1035 §4.1.1, RFC 2136)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


class OpCode(enum.IntEnum):
    QUERY = 0
    STATUS = 2


@dataclass(frozen=True)
class Question:
    """One entry of the question section."""

    name: DomainName
    rtype: RRType = RRType.A
    rclass: RRClass = RRClass.IN

    def __str__(self) -> str:
        return f"{self.name} {self.rclass.name} {self.rtype.name}"


@dataclass(frozen=True)
class SoaData:
    """SOA RDATA; ``minimum`` caps negative-cache TTLs (RFC 2308 §4)."""

    mname: DomainName
    rname: DomainName
    serial: int = 1
    refresh: int = 7200
    retry: int = 3600
    expire: int = 1_209_600
    minimum: int = 3600


@dataclass(frozen=True)
class ResourceRecord:
    """A resource record with presentation-format RDATA.

    RDATA is held as a string (an IP address, a target name, TXT
    payload); :class:`SoaData` rides in the optional ``soa`` slot when
    ``rtype`` is SOA because negative caching needs its fields
    structurally.
    """

    name: DomainName
    rtype: RRType
    ttl: int
    rdata: str
    rclass: RRClass = RRClass.IN
    soa: Optional[SoaData] = None

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ConfigError("TTL must be non-negative")
        if self.rtype == RRType.SOA and self.soa is None:
            raise ConfigError("SOA records require structured SoaData")

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """Copy with a different TTL (used when serving from cache)."""
        return replace(self, ttl=ttl)

    def __str__(self) -> str:
        return f"{self.name} {self.ttl} {self.rclass.name} {self.rtype.name} {self.rdata}"


@dataclass
class DnsMessage:
    """A DNS query or response.

    The header is modelled by explicit boolean flags rather than a
    packed word; :mod:`repro.dns.wire` does the packing.
    """

    msg_id: int = 0
    is_response: bool = False
    opcode: OpCode = OpCode.QUERY
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    rcode: RCode = RCode.NOERROR
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authorities: List[ResourceRecord] = field(default_factory=list)
    additionals: List[ResourceRecord] = field(default_factory=list)

    # -- classification ------------------------------------------------

    @property
    def question(self) -> Question:
        """The first (and in this library, only) question."""
        if not self.questions:
            raise ConfigError("message has no question section")
        return self.questions[0]

    def is_nxdomain(self) -> bool:
        """True for a Name Error response: the *name* does not exist."""
        return self.is_response and self.rcode == RCode.NXDOMAIN

    def is_nodata(self) -> bool:
        """True for NOERROR with an empty answer section (NODATA).

        The queried name exists but has no record of the requested
        type — crucially *not* an NXDomain, a distinction the paper
        makes in §2 and which this library preserves end to end.
        """
        return (
            self.is_response
            and self.rcode == RCode.NOERROR
            and not self.answers
        )

    def is_referral(self) -> bool:
        """True when a non-authoritative answer delegates via NS records."""
        return (
            self.is_response
            and self.rcode == RCode.NOERROR
            and not self.answers
            and not self.authoritative
            and any(rr.rtype == RRType.NS for rr in self.authorities)
        )

    def soa_minimum_ttl(self) -> Optional[int]:
        """Negative-cache TTL from the authority SOA, if present.

        RFC 2308 §5: the negative TTL is the minimum of the SOA's TTL
        and its MINIMUM field.
        """
        for rr in self.authorities:
            if rr.rtype == RRType.SOA and rr.soa is not None:
                return min(rr.ttl, rr.soa.minimum)
        return None

    # -- constructors ----------------------------------------------------

    @classmethod
    def make_query(
        cls,
        name: DomainName,
        rtype: RRType = RRType.A,
        msg_id: int = 0,
        recursion_desired: bool = True,
    ) -> "DnsMessage":
        """Build a standard query for ``name``/``rtype``."""
        return cls(
            msg_id=msg_id,
            recursion_desired=recursion_desired,
            questions=[Question(name, rtype)],
        )

    def make_response(
        self,
        rcode: RCode = RCode.NOERROR,
        answers: Optional[List[ResourceRecord]] = None,
        authorities: Optional[List[ResourceRecord]] = None,
        additionals: Optional[List[ResourceRecord]] = None,
        authoritative: bool = False,
        recursion_available: bool = False,
    ) -> "DnsMessage":
        """Build a response mirroring this query's id and question."""
        if self.is_response:
            raise ConfigError("cannot respond to a response")
        return DnsMessage(
            msg_id=self.msg_id,
            is_response=True,
            opcode=self.opcode,
            authoritative=authoritative,
            recursion_desired=self.recursion_desired,
            recursion_available=recursion_available,
            rcode=rcode,
            questions=list(self.questions),
            answers=list(answers or []),
            authorities=list(authorities or []),
            additionals=list(additionals or []),
        )

    def __str__(self) -> str:
        kind = "response" if self.is_response else "query"
        q = str(self.question) if self.questions else "<no question>"
        return (
            f"<DnsMessage {kind} id={self.msg_id} {q} rcode={self.rcode.name} "
            f"ans={len(self.answers)} auth={len(self.authorities)}>"
        )


def make_soa_record(
    zone_name: DomainName,
    ttl: int = 3600,
    minimum: int = 3600,
    serial: int = 1,
) -> ResourceRecord:
    """Convenience: a plausible SOA record for ``zone_name``."""
    data = SoaData(
        mname=zone_name.child("ns1"),
        rname=zone_name.child("hostmaster"),
        serial=serial,
        minimum=minimum,
    )
    rdata = (
        f"{data.mname} {data.rname} {data.serial} {data.refresh} "
        f"{data.retry} {data.expire} {data.minimum}"
    )
    return ResourceRecord(zone_name, RRType.SOA, ttl, rdata, soa=data)
