"""Simulation time.

The whole study runs on simulated wall-clock time so that an 8-year
passive DNS trace and a 6-month honeypot deployment execute in
milliseconds.  Time is represented as integer seconds since the Unix
epoch; helpers convert to calendar dates for report axes (months of
2014-2022, days relative to expiry, ...).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from repro.errors import ConfigError

SECONDS_PER_DAY = 86_400

#: The measurement window of the paper's passive DNS analysis.
STUDY_START = _dt.date(2014, 1, 1)
STUDY_END = _dt.date(2022, 12, 31)


def date_to_epoch(date: _dt.date) -> int:
    """Seconds since the Unix epoch at midnight UTC of ``date``."""
    return int(
        _dt.datetime(
            date.year, date.month, date.day, tzinfo=_dt.timezone.utc
        ).timestamp()
    )


def epoch_to_date(timestamp: int) -> _dt.date:
    """Calendar date (UTC) containing epoch second ``timestamp``."""
    return _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc).date()


def month_key(timestamp: int) -> str:
    """``YYYY-MM`` month bucket for a timestamp, used by report axes."""
    date = epoch_to_date(timestamp)
    return f"{date.year:04d}-{date.month:02d}"


def month_range(start: _dt.date, end: _dt.date) -> list:
    """All ``YYYY-MM`` keys between two dates, inclusive."""
    months = []
    year, month = start.year, start.month
    while (year, month) <= (end.year, end.month):
        months.append(f"{year:04d}-{month:02d}")
        month += 1
        if month == 13:
            month = 1
            year += 1
    return months


def days_between(earlier: int, later: int) -> int:
    """Whole days from ``earlier`` to ``later`` (may be negative)."""
    return (later - earlier) // SECONDS_PER_DAY


@dataclass
class SimClock:
    """A monotonically advancing simulated clock.

    Components that need "now" hold a shared clock instance; the
    driving harness advances it.  The clock refuses to move backwards,
    which catches workload-ordering bugs early.
    """

    now: int = field(default_factory=lambda: date_to_epoch(STUDY_START))

    def advance(self, seconds: int) -> int:
        """Move forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ConfigError("SimClock cannot move backwards")
        self.now += int(seconds)
        return self.now

    def advance_days(self, days: float) -> int:
        """Move forward by ``days`` (fractions allowed)."""
        if days < 0:
            raise ConfigError("SimClock cannot move backwards")
        return self.advance(int(days * SECONDS_PER_DAY))

    def set_to(self, timestamp: int) -> int:
        """Jump to an absolute time, which must not be in the past."""
        if timestamp < self.now:
            raise ConfigError(
                f"SimClock cannot move backwards ({timestamp} < {self.now})"
            )
        self.now = int(timestamp)
        return self.now

    @property
    def date(self) -> _dt.date:
        """Current simulated calendar date (UTC)."""
        return epoch_to_date(self.now)
