"""Deterministic shard-map helpers for the parallel hot paths.

Every parallel loop in this repo follows the same discipline (first
applied in ``workloads.trace.generate(jobs=N)``):

1. work is cut into **contiguous shards** whose boundaries depend only
   on the total size and the worker count, never on timing;
2. each shard is mapped by a pure function whose output depends only
   on the shard's contents (per-item RNG streams, where needed, are
   keyed by *global* index, not shard index);
3. results are merged back **in shard order** (``Executor.map``
   preserves submission order), so the reduce sees the same sequence
   the serial loop would.

Under those rules the merged result is bit-identical to the serial
one at any worker count — parallelism moves *where* the work runs,
never what it produces.  The helpers here are the shared mechanical
core: :func:`shard_bounds` cuts, :func:`map_shards` maps-and-merges.

``process=True`` runs shards on a :class:`ProcessPoolExecutor` — use
it when the map function holds the GIL (per-row :mod:`hashlib` work,
heavy Python loops); the function and every task must then be
picklable, which in practice means a module-level function fed plain
arrays.  The default thread pool is right for numpy-bound maps and
for closures over shared read-only state.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Sequence, Tuple, TypeVar

from repro.errors import ConfigError

_T = TypeVar("_T")
_R = TypeVar("_R")


def shard_bounds(total: int, jobs: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` bounds cutting ``total`` items ``jobs`` ways.

    The same integer arithmetic as the trace generator's population
    cut: shard ``k`` spans ``[total*k//jobs, total*(k+1)//jobs)``, so
    sizes differ by at most one and the cut depends only on
    ``(total, jobs)``.  Empty shards (``lo == hi``) are possible when
    ``jobs > total`` and are the caller's to skip.
    """
    if total < 0:
        raise ConfigError("total must be non-negative")
    if jobs < 1:
        raise ConfigError("jobs must be at least 1")
    return [
        ((total * shard) // jobs, (total * (shard + 1)) // jobs)
        for shard in range(jobs)
    ]


def map_shards(
    fn: Callable[[_T], _R],
    tasks: Sequence[_T],
    jobs: int,
    process: bool = False,
) -> List[_R]:
    """``[fn(t) for t in tasks]``, optionally on a worker pool.

    With ``jobs <= 1`` (or a single task) the map runs inline — the
    serial path *is* the parallel path with the pool removed, so there
    is no separate code branch to drift.  Otherwise the tasks run on a
    pool of ``min(jobs, len(tasks))`` workers and the results come
    back in task order regardless of completion order.
    """
    if jobs < 1:
        raise ConfigError("jobs must be at least 1")
    if jobs == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    executor_cls = ProcessPoolExecutor if process else ThreadPoolExecutor
    with executor_cls(max_workers=min(jobs, len(tasks))) as pool:
        return list(pool.map(fn, tasks))
