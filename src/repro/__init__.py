"""Reproduction of "Dial 'N' for NXDomain" (IMC 2023).

This package rebuilds, at laptop scale, every system the paper's
measurement study depends on:

- ``repro.dns`` — a from-scratch DNS substrate (names, messages, wire
  format, zones, an iterative resolver, and RFC 2308 negative caching)
  so that NXDomain responses are produced by actual resolution, not
  stamped onto rows.
- ``repro.whois`` — the ICANN domain lifecycle (registration, ERRP
  expiration, redemption grace period, drop-catching) and a queryable
  WHOIS history database standing in for WhoisXML.
- ``repro.dga`` — twelve published DGA family generators and a
  feature-based in-line detector standing in for the commercial
  classifier used in the paper.
- ``repro.squatting`` — generators and detectors for typo-, combo-,
  dot-, bit-, and homo-squatting.
- ``repro.blocklist`` — a categorized, rate-limited domain blocklist.
- ``repro.passivedns`` — a passive DNS collection pipeline (sensors,
  SIE channel, columnar store, resilient ingestion with checkpointing)
  standing in for Farsight DNSDB.
- ``repro.faults`` — a deterministic fault-injection harness (drops,
  corruption, duplicates, reorder, crashes, store failures, bursts)
  whose schedules are bit-reproducible from a seed.
- ``repro.resilience`` — retry with deterministic backoff, a circuit
  breaker, and a bounded dead-letter queue with replay.
- ``repro.honeypot`` — the NXD-Honeypot: traffic recorder, two-stage
  noise filter, and the HTTP traffic categorizer of Figure 11.
- ``repro.workloads`` — calibrated synthetic traffic: the 8-year
  NXDomain query trace, the 19 registered-domain honeypot profiles,
  the gpclick botnet, crawlers, users, and cloud scanners.
- ``repro.core`` — the measurement study itself: the scale (§4),
  origin (§5), and security (§6) analyses, and renderers for every
  table and figure in the paper's evaluation.

Quickstart::

    from repro import NxdomainStudy

    study = NxdomainStudy(seed=7)
    scale = study.run_scale_analysis()
    print(scale.monthly_series.summary())
"""

from repro.version import __version__

__all__ = ["FaultPlan", "NxdomainStudy", "StudyConfig", "__version__"]


def __getattr__(name):
    # Deferred so that importing a single substrate (e.g. repro.dns)
    # does not pull in the full study pipeline.
    if name in ("NxdomainStudy", "StudyConfig"):
        from repro.core import study

        return getattr(study, name)
    if name == "FaultPlan":
        from repro.faults.plan import FaultPlan

        return FaultPlan
    # the __getattr__ protocol requires AttributeError here
    raise AttributeError(  # repro: noqa[REP003]
        f"module {__name__!r} has no attribute {name!r}"
    )
