"""Composable fault injectors and the injection log.

Each injector models one real-world failure mode of a long-running
collection pipeline and makes its decisions from a private, seeded
:class:`numpy.random.Generator` (handed out by
:class:`~repro.faults.plan.FaultSchedule`, one decorrelated stream per
injector).  Decisions are recorded in a shared :class:`InjectionLog`,
whose fingerprint is the bit-reproducibility contract: the same
(plan, seed, event stream) triple always yields the same log.

Every injector counts the uniform draws it consumes (``draws``) so a
resumed pipeline can fast-forward a fresh schedule to the exact RNG
state of an interrupted run (see ``FaultSchedule.fast_forward``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import (
    ConfigError,
    InjectedCrashError,
    InjectedFaultError,
    TransientStoreError,
)

T = TypeVar("T")


@dataclass(frozen=True)
class InjectionEvent:
    """One fault the harness injected."""

    injector: str
    index: int
    action: str
    detail: str = ""

    def render(self) -> str:
        """Stable one-line form (the unit the log fingerprint hashes)."""
        return f"{self.injector}[{self.index}] {self.action} {self.detail}".rstrip()


class InjectionLog:
    """Ordered record of every injected fault in a schedule's lifetime."""

    def __init__(self) -> None:
        self._events: List[InjectionEvent] = []

    def append(self, event: InjectionEvent) -> None:
        """Record one injected fault."""
        self._events.append(event)

    def events(self) -> List[InjectionEvent]:
        """A copy of the recorded events, in injection order."""
        return list(self._events)

    def lines(self) -> List[str]:
        """The rendered log, one line per injected fault."""
        return [event.render() for event in self._events]

    def fingerprint(self) -> str:
        """SHA-256 over the rendered log — the bit-identity check."""
        digest = hashlib.sha256()
        for line in self.lines():
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self._events)


class Injector:
    """Base class: a named decision stream over a private generator."""

    name = "injector"

    def __init__(self, rng: np.random.Generator, log: InjectionLog) -> None:
        self._rng = rng
        self._log = log
        #: Uniform draws consumed (the fast-forward unit).
        self.draws = 0
        #: Decisions taken (the log-index unit).
        self.decisions = 0
        #: Faults actually injected.
        self.injected = 0

    def _uniform(self) -> float:
        self.draws += 1
        return float(self._rng.random())

    def _record(self, action: str, detail: str = "") -> None:
        self.injected += 1
        self._log.append(
            InjectionEvent(self.name, self.decisions, action, detail)
        )

    def fast_forward(self, draws: int) -> None:
        """Discard ``draws`` uniforms to re-align with a prior run."""
        if draws < 0:
            raise ConfigError("cannot fast-forward a negative draw count")
        for _ in range(draws):
            self._uniform()


class DropInjector(Injector):
    """Sensor dropout: scheduled dark windows plus random packet loss."""

    name = "drop"

    def __init__(
        self,
        rate: float,
        windows: Sequence[Tuple[int, int]],
        rng: np.random.Generator,
        log: InjectionLog,
    ) -> None:
        super().__init__(rng, log)
        self.rate = rate
        self.windows = tuple(windows)
        self.window_drops = 0
        self.random_drops = 0

    def should_drop(self, timestamp: int) -> bool:
        """Decide whether the observation at ``timestamp`` is lost."""
        self.decisions += 1
        draw = self._uniform()
        for start, end in self.windows:
            if start <= timestamp < end:
                self.window_drops += 1
                self._record("window-drop", f"t={timestamp}")
                return True
        if draw < self.rate:
            self.random_drops += 1
            self._record("drop", f"t={timestamp}")
            return True
        return False


class CorruptionInjector(Injector):
    """Wire-byte corruption: a truncated or bit-flipped UDP datagram."""

    name = "corrupt"

    def __init__(self, rate: float, rng: np.random.Generator, log: InjectionLog) -> None:
        super().__init__(rng, log)
        self.rate = rate

    def corrupt(self, data: bytes) -> bytes:
        """Return ``data``, possibly with one byte flipped."""
        self.decisions += 1
        draw = self._uniform()
        if draw >= self.rate or not data:
            return data
        position = int(self._uniform() * len(data)) % len(data)
        flip = 1 + int(self._uniform() * 255) % 255
        self._record("flip", f"byte={position} xor={flip}")
        mutated = bytearray(data)
        mutated[position] ^= flip
        return bytes(mutated)


class DuplicateInjector(Injector):
    """At-least-once delivery: the channel hands an item over twice."""

    name = "duplicate"

    def __init__(self, rate: float, rng: np.random.Generator, log: InjectionLog) -> None:
        super().__init__(rng, log)
        self.rate = rate

    def copies(self, timestamp: int) -> int:
        """How many times the current item is delivered (1 or 2)."""
        self.decisions += 1
        if self._uniform() < self.rate:
            self._record("duplicate", f"t={timestamp}")
            return 2
        return 1


class ReorderInjector(Injector):
    """Out-of-order delivery via a bounded hold-back buffer."""

    name = "reorder"

    def __init__(
        self,
        rate: float,
        depth: int,
        rng: np.random.Generator,
        log: InjectionLog,
    ) -> None:
        super().__init__(rng, log)
        if depth < 1:
            raise ConfigError("reorder depth must be at least 1")
        self.rate = rate
        self.depth = depth
        self._held: List[T] = []

    def push(self, item: T) -> List[T]:
        """Offer one item; returns the items released (possibly [])."""
        self.decisions += 1
        draw = self._uniform()
        if draw < self.rate and len(self._held) < self.depth:
            self._held.append(item)
            self._record("hold", f"depth={len(self._held)}")
            return []
        if self._held:
            released = [item] + self._held
            self._held = []
            return released
        return [item]

    def flush(self) -> List[T]:
        """Release everything still held (end of stream / checkpoint)."""
        released, self._held = self._held, []
        return released

    @property
    def held(self) -> int:
        return len(self._held)


class CrashInjector(Injector):
    """Subscriber crashes: a downstream consumer raising mid-fanout."""

    name = "crash"

    def __init__(self, rate: float, rng: np.random.Generator, log: InjectionLog) -> None:
        super().__init__(rng, log)
        self.rate = rate

    def maybe_crash(self, context: str = "") -> None:
        """Raise :class:`InjectedFaultError` with the configured rate."""
        self.decisions += 1
        if self._uniform() < self.rate:
            self._record("crash", context)
            raise InjectedFaultError(
                f"injected subscriber crash ({context or self.name})"
            )

    def wrap(self, handler: Callable[[T], None], context: str = "") -> Callable[[T], None]:
        """A handler that crashes per schedule before delegating."""

        def faulty(item: T) -> None:
            self.maybe_crash(context)
            handler(item)

        return faulty


class StoreFaultInjector(Injector):
    """Transient store-write failures (the load-job that times out)."""

    name = "store"

    def __init__(self, rate: float, rng: np.random.Generator, log: InjectionLog) -> None:
        super().__init__(rng, log)
        self.rate = rate

    def check(self, context: str = "") -> None:
        """Raise :class:`TransientStoreError` with the configured rate."""
        self.decisions += 1
        if self._uniform() < self.rate:
            self._record("store-failure", context)
            raise TransientStoreError(
                f"injected transient store failure ({context or self.name})"
            )


class BurstInjector(Injector):
    """Flood episodes: short windows where volume is amplified.

    Purely window-driven (no per-event draws), modelling an
    NXNSAttack-style query flood hitting the sensed resolvers.
    """

    name = "burst"

    def __init__(
        self,
        windows: Sequence[Tuple[int, int]],
        multiplier: int,
        rng: np.random.Generator,
        log: InjectionLog,
    ) -> None:
        super().__init__(rng, log)
        if multiplier < 1:
            raise ConfigError("burst multiplier must be at least 1")
        self.windows = tuple(windows)
        self.multiplier = multiplier

    def factor(self, timestamp: int) -> int:
        """Volume multiplier in effect at ``timestamp`` (1 = none)."""
        self.decisions += 1
        for start, end in self.windows:
            if start <= timestamp < end:
                self._record("burst", f"t={timestamp} x{self.multiplier}")
                return self.multiplier
        return 1


# ---------------------------------------------------------------------------
# serving faults: overload injectors for the query tier
# ---------------------------------------------------------------------------


class SlowWorkerInjector(Injector):
    """A worker that takes far longer on a query than its cost predicts.

    Models a page-cache miss storm, a GC pause, or a noisy neighbour:
    the query still completes correctly, just ``seconds`` later — which
    is enough to blow a deadline and back the admission queue up.
    """

    name = "slow-worker"

    def __init__(
        self,
        rate: float,
        seconds: int,
        rng: np.random.Generator,
        log: InjectionLog,
    ) -> None:
        super().__init__(rng, log)
        if seconds < 1:
            raise ConfigError("slow-worker delay must be at least 1 second")
        self.rate = rate
        self.seconds = seconds

    def delay(self, context: str = "") -> int:
        """Extra simulated service seconds for the current query."""
        self.decisions += 1
        if self._uniform() < self.rate:
            self._record("slow", f"{context} +{self.seconds}s".strip())
            return self.seconds
        return 0


class StuckWorkerInjector(Injector):
    """A worker that stops making progress entirely on one query.

    The deadlock/livelock failure mode: no result ever comes back, so
    only the deadline reaper frees the worker.  The query tier charges
    the whole remaining budget and counts the query cancelled.
    """

    name = "stuck-worker"

    def __init__(
        self, rate: float, rng: np.random.Generator, log: InjectionLog
    ) -> None:
        super().__init__(rng, log)
        self.rate = rate

    def stuck(self, context: str = "") -> bool:
        """Whether the worker wedges on the current query."""
        self.decisions += 1
        if self._uniform() < self.rate:
            self._record("stuck", context)
            return True
        return False


class QueryBurstInjector(Injector):
    """Arrival bursts: windows where each submission fans out ×N.

    The serving-side sibling of :class:`BurstInjector` — purely
    window-driven, modelling a tenant script gone hot-loop (or an
    NXNSAttack-style flood of per-client breakdown queries) hitting
    the admission controller.
    """

    name = "query-burst"

    def __init__(
        self,
        windows: Sequence[Tuple[int, int]],
        fanout: int,
        rng: np.random.Generator,
        log: InjectionLog,
    ) -> None:
        super().__init__(rng, log)
        if fanout < 1:
            raise ConfigError("query-burst fanout must be at least 1")
        self.windows = tuple(windows)
        self.fanout = fanout

    def factor(self, timestamp: int) -> int:
        """Arrival multiplier in effect at ``timestamp`` (1 = none)."""
        self.decisions += 1
        for start, end in self.windows:
            if start <= timestamp < end:
                self._record("query-burst", f"t={timestamp} x{self.fanout}")
                return self.fanout
        return 1


# ---------------------------------------------------------------------------
# storage faults: crash-at-a-write-boundary injectors for the spill store
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultAction:
    """What the durability layer should do at one write boundary.

    Returned by :meth:`StorageFaultInjector.decide`; the spill store's
    IO layer applies it mechanically (see ``repro.passivedns.spill``).
    ``truncate_to``/``flip`` only apply to byte-writing boundaries;
    ``lose`` applies to ``fsync`` boundaries (the write is rolled back
    to its pre-write content, as if the kernel never flushed it) and to
    ``unlink`` boundaries (the directory entry never leaves the disk).
    """

    crash_before: bool = False
    crash_after: bool = False
    truncate_to: Optional[int] = None
    flip: Optional[Tuple[int, int]] = None
    lose: bool = False


#: The boundary ops a durability layer reports.  ``write`` and
#: ``append`` carry bytes; ``fsync`` flushes one file; ``replace`` is
#: the atomic rename; ``dirsync`` flushes the directory entry;
#: ``unlink`` removes a retired file (compaction's reclaim step).
STORAGE_OPS = ("write", "append", "fsync", "replace", "dirsync", "unlink")

_NO_FAULT = FaultAction()


class StorageFaultInjector(Injector):
    """Base class: counts durability boundaries, fires at a pinned one.

    Unlike the rate-driven injectors above, storage injectors are
    *positional*: the harness enumerates every write boundary of a
    spill-store workload (run once with the base class, which never
    fires, and read ``decisions``), then re-runs the workload once per
    boundary with an injector pinned to it — the deterministic
    crash-at-every-write-boundary matrix.  ``at=None`` never fires.
    """

    name = "storage-probe"

    def __init__(
        self,
        rng: np.random.Generator,
        log: InjectionLog,
        at: Optional[int] = None,
    ) -> None:
        super().__init__(rng, log)
        if at is not None and at < 0:
            raise ConfigError("boundary index must be non-negative")
        self.at = at
        #: True once the pinned boundary has fired.
        self.fired = False

    def decide(self, op: str, path: str, size: int = 0) -> FaultAction:
        """The durability layer's per-boundary hook."""
        if op not in STORAGE_OPS:
            raise ConfigError(f"unknown storage op {op!r}")
        index = self.decisions
        self.decisions += 1
        if self.fired or self.at is None or index != self.at:
            return _NO_FAULT
        self.fired = True
        return self._fire(op, path, size)

    def _fire(self, op: str, path: str, size: int) -> FaultAction:
        """Subclass hook: the action taken at the pinned boundary."""
        return _NO_FAULT

    def crash(self, context: str = "") -> None:
        """Kill the writer (called by the IO layer per the action)."""
        self._record("crash", context)
        raise InjectedCrashError(
            f"injected writer crash at boundary {self.at} ({context})"
        )


class TornWriteInjector(StorageFaultInjector):
    """A write lands partially, then the process dies.

    At a byte-writing boundary only a seeded fraction of the payload
    reaches the file before the crash; at any other boundary the
    process dies *before* the operation takes effect (covering
    crash-before-rename and crash-before-fsync points).
    """

    name = "torn-write"

    def _fire(self, op: str, path: str, size: int) -> FaultAction:
        if op in ("write", "append") and size > 0:
            keep = int(self._uniform() * size) % size
            self._record("torn-write", f"{path} keep={keep}/{size}")
            return FaultAction(truncate_to=keep, crash_after=True)
        self._record("crash-before", f"{op} {path}")
        return FaultAction(crash_before=True)


class BitFlipInjector(StorageFaultInjector):
    """Silent at-rest corruption: one bit flips inside a written file.

    The writer *survives* and completes its protocol — the flip models
    media corruption that nothing notices until the next
    :meth:`SpillStore.open` checksums the segment.  At boundaries that
    carry no bytes the process dies right after the operation instead
    (covering crash-after-rename points).
    """

    name = "bit-flip"

    def _fire(self, op: str, path: str, size: int) -> FaultAction:
        if op in ("write", "append") and size > 0:
            position = int(self._uniform() * size) % size
            bit = int(self._uniform() * 8) % 8
            self._record("bit-flip", f"{path} byte={position} bit={bit}")
            return FaultAction(flip=(position, 1 << bit))
        self._record("crash-after", f"{op} {path}")
        return FaultAction(crash_after=True)


class FsyncLossInjector(StorageFaultInjector):
    """An fsync reports success but the data never hits the platter.

    At an ``fsync`` boundary the file is rolled back to its pre-write
    content and the process dies — the classic lost-write window.  An
    ``unlink`` boundary is lost the same way: the removal never reaches
    the disk (the retired file survives the crash), modelling a
    directory entry whose deletion was never journalled.  At any other
    boundary the process dies right after the operation.
    """

    name = "fsync-loss"

    def _fire(self, op: str, path: str, size: int) -> FaultAction:
        if op == "fsync":
            self._record("fsync-loss", path)
            return FaultAction(lose=True, crash_after=True)
        if op == "unlink":
            self._record("unlink-loss", path)
            return FaultAction(lose=True, crash_after=True)
        self._record("crash-after", f"{op} {path}")
        return FaultAction(crash_after=True)
