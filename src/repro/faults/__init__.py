"""Deterministic fault injection.

The paper's measurement substrate ran for eight years in the wild,
where sensor dropout, malformed packets, duplicate delivery, and
collector outages are routine.  This package reproduces those failure
modes *deterministically*: a :class:`FaultPlan` describes which faults
occur at which rates, and :class:`FaultSchedule` materializes the plan
against a seed so that the same (plan, seed) pair produces a
bit-identical injection schedule — every decision flows through
:mod:`repro.rand` streams and simulated time, never wall-clock state.

The injectors are composable and content-agnostic (they operate on
opaque items, timestamps, and byte strings), so the same harness
drives the passive DNS pipeline, the honeypot recorder, and the
resolver.  The resilience primitives that absorb these faults live in
:mod:`repro.resilience`; the wired-up pipeline lives in
:mod:`repro.passivedns.pipeline`.
"""

from repro.faults.injectors import (
    BitFlipInjector,
    BurstInjector,
    CorruptionInjector,
    CrashInjector,
    DropInjector,
    DuplicateInjector,
    FaultAction,
    FsyncLossInjector,
    Injector,
    QueryBurstInjector,
    ReorderInjector,
    SlowWorkerInjector,
    StorageFaultInjector,
    StoreFaultInjector,
    StuckWorkerInjector,
    TornWriteInjector,
)
from repro.faults.plan import (
    DropoutWindow,
    FaultPlan,
    FaultSchedule,
    InjectionEvent,
    InjectionLog,
)

__all__ = [  # repro: noqa[REP104] fault-plan record types; exported for annotations
    "BitFlipInjector",
    "BurstInjector",
    "CorruptionInjector",
    "CrashInjector",
    "DropInjector",
    "DropoutWindow",
    "DuplicateInjector",
    "FaultAction",
    "FaultPlan",
    "FaultSchedule",
    "FsyncLossInjector",
    "InjectionEvent",
    "InjectionLog",
    "Injector",
    "QueryBurstInjector",
    "ReorderInjector",
    "SlowWorkerInjector",
    "StorageFaultInjector",
    "StoreFaultInjector",
    "StuckWorkerInjector",
    "TornWriteInjector",
]
