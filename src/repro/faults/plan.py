"""Fault plans and their materialized schedules.

A :class:`FaultPlan` is a pure description — rates, window counts,
amplitudes — with no randomness of its own.  Calling
:meth:`FaultPlan.schedule` binds it to a seed and returns a
:class:`FaultSchedule`: one decorrelated :mod:`repro.rand` stream per
injector, materialized dropout/burst windows, and a shared
:class:`~repro.faults.injectors.InjectionLog`.  Identical (plan, seed)
pairs driven by identical event streams produce bit-identical logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.clock import SECONDS_PER_DAY, STUDY_END, STUDY_START, date_to_epoch
from repro.errors import ConfigError
from repro.faults.injectors import (
    BurstInjector,
    CorruptionInjector,
    CrashInjector,
    DropInjector,
    DuplicateInjector,
    InjectionEvent,
    InjectionLog,
    QueryBurstInjector,
    ReorderInjector,
    SlowWorkerInjector,
    StoreFaultInjector,
    StuckWorkerInjector,
)
from repro.rand import SeedSequenceFactory

__all__ = [  # repro: noqa[REP104] fault-plan record types; exported for annotations
    "DropoutWindow",
    "FaultPlan",
    "FaultSchedule",
    "InjectionEvent",
    "InjectionLog",
]

_RATE_FIELDS = (
    "drop_rate",
    "corrupt_rate",
    "duplicate_rate",
    "reorder_rate",
    "subscriber_crash_rate",
    "store_failure_rate",
    "slow_worker_rate",
    "stuck_worker_rate",
)


@dataclass(frozen=True)
class DropoutWindow:
    """One scheduled dark period: ``[start, end)`` in epoch seconds."""

    start: int
    end: int

    def contains(self, timestamp: int) -> bool:
        """True when ``timestamp`` falls inside the window."""
        return self.start <= timestamp < self.end

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class FaultPlan:
    """A seed-free description of which faults occur and how often.

    All rates are per-event probabilities in ``[0, 1]``; windowed
    faults (sensor dropout, bursts) are described by a count and a
    duration and placed uniformly over ``[horizon_start, horizon_end)``
    when the plan is scheduled.
    """

    #: Per-observation Bernoulli sensor loss.
    drop_rate: float = 0.0
    #: Count and length of scheduled sensor-dark windows.
    dropout_windows: int = 0
    dropout_window_days: float = 1.0
    #: Per-packet wire-byte corruption.
    corrupt_rate: float = 0.0
    #: Per-observation duplicate delivery.
    duplicate_rate: float = 0.0
    #: Per-observation hold-back (out-of-order delivery).
    reorder_rate: float = 0.0
    reorder_depth: int = 4
    #: Per-delivery subscriber crash.
    subscriber_crash_rate: float = 0.0
    #: Per-write transient store failure.
    store_failure_rate: float = 0.0
    #: Count, length, and amplitude of flood episodes.
    burst_episodes: int = 0
    burst_days: float = 1.0
    burst_multiplier: int = 5
    #: Per-query slow worker (serving tier): probability and injected
    #: extra service seconds.
    slow_worker_rate: float = 0.0
    slow_worker_seconds: int = 45
    #: Per-query wedged worker (progress stops; only the deadline
    #: reaper frees it).
    stuck_worker_rate: float = 0.0
    #: Count, length, and fan-out of arrival-burst episodes hitting
    #: the query tier's admission controller.
    query_burst_episodes: int = 0
    query_burst_days: float = 0.25
    query_burst_fanout: int = 8
    #: Window placement horizon (defaults to the study window).
    horizon_start: int = date_to_epoch(STUDY_START)
    horizon_end: int = date_to_epoch(STUDY_END)

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must lie in [0, 1], got {value}")
        if (
            self.dropout_windows < 0
            or self.burst_episodes < 0
            or self.query_burst_episodes < 0
        ):
            raise ConfigError("window counts must be non-negative")
        if (
            self.dropout_window_days <= 0
            or self.burst_days <= 0
            or self.query_burst_days <= 0
        ):
            raise ConfigError("window durations must be positive")
        if self.reorder_depth < 1:
            raise ConfigError("reorder_depth must be at least 1")
        if self.burst_multiplier < 1:
            raise ConfigError("burst_multiplier must be at least 1")
        if self.query_burst_fanout < 1:
            raise ConfigError("query_burst_fanout must be at least 1")
        if self.slow_worker_seconds < 1:
            raise ConfigError("slow_worker_seconds must be at least 1")
        if self.horizon_end <= self.horizon_start:
            raise ConfigError("horizon_end must follow horizon_start")

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)
            and self.dropout_windows == 0
            and self.burst_episodes == 0
            and self.query_burst_episodes == 0
        )

    @classmethod
    def loss(cls, rate: float) -> "FaultPlan":
        """The degradation-curve operating point for ``rate`` loss.

        Drops ``rate`` of observations outright and stresses the
        resilience layer with half-rate duplicates and transient store
        failures (which dedup, retry, and dead-letter replay absorb, so
        the *net* loss stays at ``rate``).
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(f"loss rate must lie in [0, 1], got {rate}")
        return cls(
            drop_rate=rate,
            duplicate_rate=rate / 2.0,
            store_failure_rate=rate / 2.0,
        )

    @classmethod
    def overload(
        cls, rate: float, bursts: int = 2, fanout: int = 8
    ) -> "FaultPlan":
        """The serving-tier overload operating point for ``rate``.

        Slows ``rate`` of queries, wedges a quarter of that outright,
        and adds ``bursts`` arrival-flood episodes at ``fanout``× — the
        mix the overload sweep drives against the admission ladder.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(f"overload rate must lie in [0, 1], got {rate}")
        return cls(
            slow_worker_rate=rate,
            stuck_worker_rate=rate / 4.0,
            query_burst_episodes=bursts,
            query_burst_fanout=fanout,
        )

    def schedule(self, seed: int) -> "FaultSchedule":
        """Materialize this plan against ``seed``."""
        return FaultSchedule(self, seed)


class FaultSchedule:
    """A plan bound to a seed: injectors, windows, and the shared log.

    Determinism contract: injector decisions depend only on (plan,
    seed, per-injector decision index) — never on wall-clock time,
    item content, or the interleaving of *other* injectors — so two
    runs over the same event stream produce bit-identical logs, and a
    resumed run can re-align by fast-forwarding draw counters.
    """

    _INJECTOR_LABELS = (
        "drop", "corrupt", "duplicate", "reorder", "crash", "store", "burst",
        "slow-worker", "stuck-worker", "query-burst",
    )

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        self.plan = plan
        self.seed = int(seed)
        self._seeds = SeedSequenceFactory(self.seed).subfactory("faults")
        self.log = InjectionLog()
        self.dropout_windows = self._place_windows(
            "dropout-windows",
            plan.dropout_windows,
            plan.dropout_window_days,
        )
        self.burst_windows = self._place_windows(
            "burst-windows", plan.burst_episodes, plan.burst_days
        )
        self.drop = DropInjector(
            plan.drop_rate,
            [(w.start, w.end) for w in self.dropout_windows],
            self._seeds.rng("drop"),
            self.log,
        )
        self.corrupt = CorruptionInjector(
            plan.corrupt_rate, self._seeds.rng("corrupt"), self.log
        )
        self.duplicate = DuplicateInjector(
            plan.duplicate_rate, self._seeds.rng("duplicate"), self.log
        )
        self.reorder = ReorderInjector(
            plan.reorder_rate,
            plan.reorder_depth,
            self._seeds.rng("reorder"),
            self.log,
        )
        self.crash = CrashInjector(
            plan.subscriber_crash_rate, self._seeds.rng("crash"), self.log
        )
        self.store = StoreFaultInjector(
            plan.store_failure_rate, self._seeds.rng("store"), self.log
        )
        self.burst = BurstInjector(
            [(w.start, w.end) for w in self.burst_windows],
            plan.burst_multiplier,
            self._seeds.rng("burst"),
            self.log,
        )
        # Serving-tier injectors.  Streams are label-derived, so adding
        # these never perturbs the seven ingest-side streams above.
        self.query_burst_windows = self._place_windows(
            "query-burst-windows",
            plan.query_burst_episodes,
            plan.query_burst_days,
        )
        self.slow_worker = SlowWorkerInjector(
            plan.slow_worker_rate,
            plan.slow_worker_seconds,
            self._seeds.rng("slow-worker"),
            self.log,
        )
        self.stuck_worker = StuckWorkerInjector(
            plan.stuck_worker_rate, self._seeds.rng("stuck-worker"), self.log
        )
        self.query_burst = QueryBurstInjector(
            [(w.start, w.end) for w in self.query_burst_windows],
            plan.query_burst_fanout,
            self._seeds.rng("query-burst"),
            self.log,
        )
        self._injectors = {
            "drop": self.drop,
            "corrupt": self.corrupt,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "crash": self.crash,
            "store": self.store,
            "burst": self.burst,
            "slow-worker": self.slow_worker,
            "stuck-worker": self.stuck_worker,
            "query-burst": self.query_burst,
        }

    def _place_windows(
        self, label: str, count: int, days: float
    ) -> Tuple[DropoutWindow, ...]:
        """Place ``count`` windows of ``days`` uniformly over the horizon."""
        if count == 0:
            return ()
        rng = self._seeds.rng(label)
        duration = max(int(days * SECONDS_PER_DAY), 1)
        latest = max(self.plan.horizon_end - duration, self.plan.horizon_start)
        starts = sorted(
            int(rng.integers(self.plan.horizon_start, latest + 1))
            for _ in range(count)
        )
        return tuple(DropoutWindow(s, s + duration) for s in starts)

    def injector_seed(self, name: str) -> int:
        """The derived child seed feeding the named injector's stream."""
        if name not in self._INJECTOR_LABELS:
            raise ConfigError(f"unknown injector {name!r}")
        return self._seeds.child_seed(name)

    def counters(self) -> Dict[str, int]:
        """Per-injector uniform-draw counts (the checkpoint payload)."""
        return {name: inj.draws for name, inj in self._injectors.items()}

    def fast_forward(self, counters: Dict[str, int]) -> None:
        """Re-align fresh injector streams with a checkpointed run."""
        for name, draws in counters.items():
            injector = self._injectors.get(name)
            if injector is None:
                raise ConfigError(f"unknown injector {name!r} in checkpoint")
            injector.fast_forward(int(draws))

    def fingerprint(self) -> str:
        """The injection log's SHA-256 (bit-identity across runs)."""
        return self.log.fingerprint()

    def injected_total(self) -> int:
        """Total faults injected so far across every injector."""
        return sum(inj.injected for inj in self._injectors.values())

    def summary(self) -> List[Tuple[str, int, int]]:
        """Per-injector (name, decisions, injected) rows, stable order."""
        return [
            (name, self._injectors[name].decisions, self._injectors[name].injected)
            for name in self._INJECTOR_LABELS
        ]
