"""Figure 4 — NXDomains and their queries across the top 20 TLDs.

Paper: .com, .net, .cn, .ru, and .org have the most NXDomains and also
receive the most queries; the top ccTLDs all appear in the top-20 list,
and the query ranking tracks the domain ranking.
"""

from repro.core.reports import render_figure4
from repro.core.scale import tld_distribution


def test_fig04_tld_distribution(benchmark, trace):
    distribution = benchmark(tld_distribution, trace.nx_db)
    print()
    print(render_figure4(distribution))
    checks = distribution.shape_checks()
    assert all(checks.values()), checks
