"""Ablation — NXDomain hijacking's effect on measured volume (§7).

The paper argues hijacking is a minor validity threat: only ~4.8% of
NXDomain responses are hijacked in the wild (Chung et al.), so the
high-traffic NXDomains it studies remain visible.  This bench drives
one fixed client query stream through resolvers at increasing hijack
rates and measures how much NXDomain volume disappears from the
passive DNS channel — confirming the visibility loss is proportional
and small at the wild rate.
"""

from repro.core.reports import render_table
from repro.dns.hierarchy import DnsHierarchy
from repro.dns.hijack import HijackingResolver, WILD_HIJACK_RATE
from repro.dns.name import DomainName
from repro.dns.tld import TldRegistry
from repro.passivedns.channel import SieChannel
from repro.passivedns.sensor import Sensor
from repro.rand import make_rng

RATES = (0.0, WILD_HIJACK_RATE, 0.2, 0.5, 1.0)


def observed_nx_volume(hijack_rate: float, queries: int = 1_500) -> int:
    """NXDomain observations reaching the channel at a hijack rate."""
    rng = make_rng(23)
    hierarchy = DnsHierarchy.build(TldRegistry.default())
    channel = SieChannel()
    observed = []
    channel.subscribe(observed.append)
    sensor = Sensor("tap", channel)
    resolver = HijackingResolver(
        hierarchy.make_recursive_resolver(use_negative_cache=False),
        make_rng(29),
        hijack_rate=hijack_rate,
    )
    for i in range(queries):
        name = DomainName(f"gone-{int(rng.integers(0, 400))}.com")
        result = resolver.resolve(name, now=i * 30)
        sensor.observe_result(result, now=i * 30)
    return len(observed)


def test_ablation_hijack_visibility(benchmark):
    baseline = observed_nx_volume(0.0)
    wild = benchmark(observed_nx_volume, WILD_HIJACK_RATE)
    rows = [("0% (no hijacking)", baseline, "100.0%")]
    for rate in RATES[1:]:
        volume = wild if rate == WILD_HIJACK_RATE else observed_nx_volume(rate)
        rows.append(
            (f"{rate:.1%}", volume, f"{volume / baseline:.1%}")
        )
    print()
    print("Ablation — NXDomain visibility under response hijacking")
    print(render_table(["hijack rate", "NX observations", "visibility"], rows))

    # At the wild rate the loss is small (~5%), at 100% nothing is left.
    assert wild / baseline > 0.9
    assert observed_nx_volume(1.0) == 0
