"""Table 1 — HTTP/HTTPS traffic per registered domain and category.

Paper: 5,925,311 requests over six months across the 19 registered
domains, split into Web Crawler (505,238), Automated Process
(5,186,858 — the dominant class), Referral, User Visit, and Others;
resheba.online is the busiest domain and gpclick.com's traffic is
>98% malicious requests (the botnet stream).

The bench times the full filter + categorize pass over the recorded
six-month collection and regenerates the table.
"""

from repro.core.reports import render_table1
from repro.core.security import SecurityRunResult


def test_table1_traffic(benchmark, security_result: SecurityRunResult):
    honeypot = security_result.honeypot

    def filter_and_categorize():
        return honeypot.categorized_requests()

    benchmark(filter_and_categorize)
    print()
    print(render_table1(security_result))
    checks = security_result.shape_checks()
    assert all(checks.values()), checks

    # Table 1's skew: the paper's traffic is concentrated on a handful
    # of domains (resheba.online ~35%, top-3 ~74%).
    from repro.core.security import traffic_concentration

    concentration = traffic_concentration(security_result)
    print(
        f"concentration: top-1 {concentration.top_share(1):.1%}, "
        f"top-3 {concentration.top_share(3):.1%}, "
        f"gini {concentration.gini():.2f}"
    )
    assert all(concentration.shape_checks().values())

    # Scaled-volume sanity: the generator is calibrated to the paper's
    # 5,925,311 requests times the bench scale.
    measured = sum(report.total for report in security_result.table1)
    expected = 5_925_311 * 0.01
    assert abs(measured - expected) / expected < 0.15, (measured, expected)
