"""Ablation — vantage-point count vs NXDomain visibility (§3.1).

The paper asserts that because Farsight collects "from multiple
vantage points, including users and many tiers of DNS servers", DNS
caching is "unlikely to have a significant influence" on its NXDomain
volume.  This bench measures that claim's mechanism: the same client
query stream replayed through 1, 4, 16, and 64 sensor-tapped
resolvers.  More vantage points mean each negative cache absorbs a
smaller slice of the stream, so channel-visible volume grows toward
the true query count.
"""

from repro.core.reports import render_table
from repro.passivedns.vantage import MultiVantageCollector, replay_clients
from repro.rand import make_rng

VANTAGE_COUNTS = (1, 4, 16, 64)


def run(vantage_points: int):
    collector = MultiVantageCollector(vantage_points)
    return replay_clients(collector, make_rng(41), clients=64, queries=1_500)


def test_ablation_vantage_points(benchmark):
    results = {}
    for count in VANTAGE_COUNTS:
        results[count] = benchmark(run, count) if count == 16 else run(count)
    rows = [
        (
            count,
            stats.channel_observations,
            f"{1 - stats.suppression:.1%}",
        )
        for count, stats in results.items()
    ]
    print()
    print("Ablation — NXDomain visibility vs collection vantage points")
    print(render_table(["vantage points", "NX observations", "visibility"], rows))

    visibilities = [
        results[count].channel_observations for count in VANTAGE_COUNTS
    ]
    # Monotone: more vantage points, more of the stream is visible.
    assert visibilities == sorted(visibilities)
    # And the multi-vantage argument holds: at 64 resolvers the channel
    # sees several times what a single shared cache lets through.
    assert visibilities[-1] > 2 * visibilities[0]
