"""Figure 15 — gpclick.com request source hostnames.

Paper: although the victims are global, the requests arrive from a
narrow cloud infrastructure — 56.1% of the malicious requests have
source addresses reverse-resolving to google-proxy hosts, with the
rest across generic cloud providers.
"""

from repro.core.reports import render_figure15
from repro.core.security import botnet_hostname_distribution


def test_fig15_botnet_hostnames(benchmark, security_result):
    histogram = benchmark(botnet_hostname_distribution, security_result)
    print()
    print(render_figure15(histogram))
    total = sum(histogram.values())
    assert total > 0
    assert histogram.get("google-proxy", 0) / total > 0.45
