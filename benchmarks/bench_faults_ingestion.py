"""Resilient-pipeline ingestion throughput under fault load.

Replays the session trace's passive DNS rows through the
:class:`~repro.passivedns.pipeline.ResilientIngestPipeline` at 0%,
1%, and 10% composite fault rates (``FaultPlan.loss``) and reports the
absorption ledger: how many observations were dropped, duplicated,
retried, dead-lettered, and recovered.  The 0% point doubles as a
correctness gate — with faults disabled the pipeline's store must be
byte-identical to the trace's own database.
"""

import pytest

from repro.core.reports import render_table
from repro.faults import FaultPlan
from repro.passivedns.pipeline import ResilientIngestPipeline

FAULT_RATES = [0.0, 0.01, 0.10]
PIPELINE_SEED = 202


def _replay(trace, rate):
    schedule = None if rate == 0 else FaultPlan.loss(rate).schedule(PIPELINE_SEED)
    pipeline = ResilientIngestPipeline(schedule=schedule)
    pipeline.ingest_many(trace.nx_db.iter_observations())
    stats = pipeline.finish()
    return pipeline, stats


@pytest.mark.parametrize("rate", FAULT_RATES)
def test_faulted_ingestion_throughput(benchmark, trace, rate):
    pipeline, stats = benchmark.pedantic(
        _replay, args=(trace, rate), rounds=1, iterations=1
    )
    survived = pipeline.database.total_responses()
    baseline = trace.nx_db.total_responses()
    print()
    print(
        f"fault rate {rate:.0%}: {stats.offered:,} offered, "
        f"{survived / baseline:.4f} of responses survived"
    )
    print(
        render_table(
            ["counter", "value"],
            [
                ("dropped", f"{stats.dropped:,}"),
                ("duplicates delivered", f"{stats.duplicates_delivered:,}"),
                ("duplicates suppressed",
                 f"{pipeline.database.duplicates_suppressed:,}"),
                ("store retries", f"{stats.store_retries:,}"),
                ("store failures", f"{stats.store_failures:,}"),
                ("replay recovered", f"{stats.replay_recovered:,}"),
            ],
        )
    )
    assert stats.offered == trace.nx_db.row_count()
    if rate == 0:
        # Faults disabled: the resilient path is an identity transform.
        assert pipeline.database.fingerprint() == trace.nx_db.fingerprint()
        assert stats.dropped == 0 and stats.store_retries == 0
    else:
        # Loss is bounded by the drop rate; everything the drop
        # injector did not claim must have been stored (retries plus
        # dead-letter replay recover every transient store failure).
        assert stats.dropped > 0
        assert survived < baseline
        # Every row the drop injector did not claim is stored exactly
        # once: duplicates and replays are dedup-suppressed.
        assert pipeline.database.row_count() == stats.offered - stats.dropped
        assert 1 - rate - 0.02 <= survived / baseline <= 1 - rate + 0.02
