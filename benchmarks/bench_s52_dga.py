"""§5.2 — DGA census over the expired NXDomains.

Paper: the commercial in-line classifier flags 2,770,650 of the 91 M
expired NXDomains (3%) as DGA-generated.  The bench runs our
feature-based detector over the expired population and scores it
against the trace's planted ground truth.
"""

from repro.core.origin import dga_census
from repro.core.reports import render_dga_census


def test_s52_dga_census(benchmark, trace, dga_detector):
    census = benchmark(dga_census, trace, dga_detector)
    print()
    print(render_dga_census(census))
    checks = census.shape_checks()
    assert all(checks.values()), checks
