"""Ablation — DGA detector decision-threshold sweep.

The paper's "3% of expired NXDomains are DGA" figure depends on the
classifier's operating point.  This bench sweeps the logistic
regression's threshold over held-out DGA and benign populations and
prints the precision/recall/FPR trade-off, then checks the monotone
structure (recall falls, precision rises with the threshold).
"""

from repro.core.reports import render_table
from repro.dga.corpus import benign_domains
from repro.dga.families import ALL_FAMILIES
from repro.rand import make_rng

THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def test_ablation_dga_threshold(benchmark, dga_detector):
    dga = [
        sample.domain
        for family_cls in ALL_FAMILIES
        for sample in family_cls(seed=999).domains_for_day(700, count=60)
    ]
    benign = benign_domains(make_rng(998), 1_200)

    sweep = benchmark(dga_detector.threshold_sweep, dga, benign, THRESHOLDS)

    rows = [
        (
            threshold,
            f"{metrics.precision:.3f}",
            f"{metrics.recall:.3f}",
            f"{metrics.false_positive_rate:.3f}",
            f"{metrics.f1:.3f}",
        )
        for threshold, metrics in sweep
    ]
    print()
    print("Ablation — DGA detector threshold sweep")
    print(render_table(["threshold", "precision", "recall", "fpr", "f1"], rows))

    recalls = [metrics.recall for _, metrics in sweep]
    fprs = [metrics.false_positive_rate for _, metrics in sweep]
    assert recalls == sorted(recalls, reverse=True)
    assert fprs == sorted(fprs, reverse=True)
    # A usable operating point exists (what the production detector ships).
    assert any(
        metrics.precision > 0.9 and metrics.recall > 0.75 for _, metrics in sweep
    )
