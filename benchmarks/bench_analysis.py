"""Analyzer engine benchmarks: cold vs warm vs parallel lint runs.

Self-hosts the linter on this repository three ways and checks the
engine-level performance contracts:

- **cold** — empty cache: parse + walk every file, then the full
  whole-program and effect passes;
- **warm** — content-hash cache from the cold run: no file is
  re-parsed and the project pass is replayed from cached findings.
  Contract (CI-enforced): zero cache misses — structural, so shared
  CI runners cannot flake it.  The warm < 25%-of-cold wall-time ratio
  is always printed but asserted only off-CI, where timings are
  meaningful;
- **parallel** — ``jobs=2`` process-pool fan-out.  Contract: output
  is byte-identical to the serial run; the >=1.5x speedup contract is
  asserted only off-CI and on hosts with enough cores to make it
  physical.

``time.perf_counter`` is a monotonic interval timer, not a wall-clock
read, so it is (deliberately) outside REP001's ban list.
"""

import os
import time
from pathlib import Path

import pytest

from repro.analysis import cache as cache_mod
from repro.analysis import Analyzer, all_rule_ids, instantiate, load_config

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Warm runs must beat this fraction of the cold time (asserted
#: off-CI only; wall-time ratios on shared CI runners are noise).
WARM_COLD_MAX_RATIO = 0.25
#: Minimum parallel speedup, asserted only off-CI and when the host
#: has spare cores; a 1-2 core box cannot physically deliver it.
PARALLEL_MIN_SPEEDUP = 1.5
PARALLEL_JOBS = 2
ROUNDS = 3
#: Timing ratios are informational on CI; structural contracts (cache
#: misses, finding equality) are the hard gates everywhere.
IN_CI = bool(os.environ.get("CI"))


def _fresh_analyzer():
    config = load_config(REPO_ROOT)
    rule_ids = config.enabled_rule_ids(all_rule_ids())
    analyzer = Analyzer(config, instantiate(rule_ids))
    paths = [REPO_ROOT / p for p in config.paths]
    signature = cache_mod.ruleset_signature(config, rule_ids)
    return analyzer, paths, signature


def _timed(fn):
    """Best-of-N wall time; best-of filters scheduler noise."""
    best = None
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def timings():
    """Cold, warm, and parallel self-host runs over this repository."""
    analyzer, paths, signature = _fresh_analyzer()

    def cold_run():
        cache = cache_mod.AnalysisCache(signature=signature)
        return cache, analyzer.run(REPO_ROOT, paths, cache=cache)

    cold_time, (cache, cold_findings) = _timed(cold_run)

    cache.hits = cache.misses = 0
    warm_time, warm_findings = _timed(
        lambda: analyzer.run(REPO_ROOT, paths, cache=cache)
    )

    parallel_time, parallel_findings = _timed(
        lambda: analyzer.run(REPO_ROOT, paths, jobs=PARALLEL_JOBS)
    )

    return {
        "cold": (cold_time, cold_findings),
        "warm": (warm_time, warm_findings),
        "parallel": (parallel_time, parallel_findings),
        "files": len(cache.files),
        "warm_misses": cache.misses,
        "cache": cache,
        "rule_ids": sorted(
            rule.rule_id
            for rule in analyzer.file_rules + analyzer.project_rules
        ),
    }


def test_cold_run_analyzes_the_tree(timings):
    cold_time, findings = timings["cold"]
    print()
    print(
        f"cold:     {cold_time * 1e3:8.1f} ms  "
        f"({timings['files']} files, {len(findings)} findings)"
    )
    assert timings["files"] > 50, "self-host scan looks truncated"


def test_warm_run_is_incremental(timings):
    cold_time, cold_findings = timings["cold"]
    warm_time, warm_findings = timings["warm"]
    ratio = warm_time / cold_time
    print()
    print(f"warm:     {warm_time * 1e3:8.1f} ms  ({ratio:.1%} of cold)")
    assert [f.to_json() for f in warm_findings] == [
        f.to_json() for f in cold_findings
    ], "warm findings diverge from cold"
    # The hard gate is structural: an unchanged tree must produce zero
    # cache misses, i.e. no file is ever re-parsed on a warm run.
    assert timings["warm_misses"] == 0, (
        f"{timings['warm_misses']} cache misses on a warm run over an "
        "unchanged tree; the incremental cache is not incremental"
    )
    if not IN_CI:
        assert ratio < WARM_COLD_MAX_RATIO, (
            f"warm run took {ratio:.1%} of cold; the incremental cache "
            f"contract is < {WARM_COLD_MAX_RATIO:.0%}"
        )


def test_four_pass_engine_is_fully_cached(timings):
    """The effect and concurrency passes ride the same cache.

    Structural contracts: the resolved self-host ruleset includes the
    whole REP20x *and* REP30x families, every cached summary carries
    the effect-facts key (lock, with, and resource facts live inside
    the same per-function effect entries, so one key covers both
    passes), and at least one real module contributed lock facts —
    the self-hosted guards in the spill/database tier.
    """
    rule_ids = set(timings["rule_ids"])
    assert {f"REP20{n}" for n in range(1, 5)} <= rule_ids, (
        "self-host run is missing the effect-rule pass"
    )
    assert {f"REP30{n}" for n in range(1, 6)} <= rule_ids, (
        "self-host run is missing the concurrency-rule pass"
    )
    cache = timings["cache"]
    summarized = [
        entry.summary
        for entry in cache.files.values()
        if entry.summary is not None
    ]
    assert summarized, "no module summaries were cached"
    assert all("effects" in summary for summary in summarized), (
        "cached summaries lack effect facts; warm runs would silently "
        "skip the REP20x/REP30x passes"
    )
    assert any(summary["effects"] for summary in summarized), (
        "no cached summary carries any effect facts"
    )
    assert any(
        fx.get("locks") or fx.get("withs")
        for summary in summarized
        for fx in summary["effects"].values()
    ), (
        "no cached summary carries lock facts; warm runs would "
        "silently skip the REP30x pass"
    )
    # Zero warm misses with effect summaries in the cache is asserted
    # by test_warm_run_is_incremental over the same cache object.
    cold_time, _ = timings["cold"]
    warm_time, _ = timings["warm"]
    print()
    print(
        f"four-pass warm/cold ratio with effect summaries cached: "
        f"{warm_time / cold_time:.1%}"
    )


def test_parallel_run_matches_serial(timings):
    cold_time, cold_findings = timings["cold"]
    parallel_time, parallel_findings = timings["parallel"]
    speedup = cold_time / parallel_time
    cores = os.cpu_count() or 1
    print()
    print(
        f"parallel: {parallel_time * 1e3:8.1f} ms  "
        f"(jobs={PARALLEL_JOBS}, {speedup:.2f}x vs cold, {cores} cores)"
    )
    assert [f.to_json() for f in parallel_findings] == [
        f.to_json() for f in cold_findings
    ], "parallel findings diverge from serial"
    if not IN_CI and cores >= 2 * PARALLEL_JOBS:
        # Only assert the speedup where the hardware can deliver it
        # and the wall clock is trustworthy; on shared CI runners and
        # 1-2 core boxes, noise and pool overhead dominate.
        assert speedup > PARALLEL_MIN_SPEEDUP, (
            f"jobs={PARALLEL_JOBS} speedup {speedup:.2f}x on {cores} "
            f"cores; contract is > {PARALLEL_MIN_SPEEDUP}x"
        )
