"""Figure 3 — average NXDomain responses per month, 2014-2022.

Paper: the monthly average rises from 2014 to 2016, stays relatively
flat until 2020, jumps steeply in 2021 (to ~20 B/month), and increases
further in 2022 (>22 B/month).  The bench regenerates the series from
the trace and checks that year-over-year shape.
"""

from repro.core.reports import render_figure3
from repro.core.scale import monthly_response_series


def test_fig03_monthly_volume(benchmark, trace):
    series = benchmark(monthly_response_series, trace.nx_db)
    print()
    print(render_figure3(series))
    checks = series.shape_checks()
    assert all(checks.values()), checks
