"""Figure 10 — port distribution: honeypot vs control group.

Paper: the registered NXDomains receive traffic overwhelmingly on
ports 80/443 (81.7% of all packets), while the control group is
dominated by port 52646 — AWS's instance-monitoring port — which the
two-stage filter removes entirely from the NXDomain view.
"""

from repro.core.reports import render_figure10
from repro.core.security import port_distribution


def test_fig10_port_distribution(benchmark, security_result):
    ports = benchmark(port_distribution, security_result)
    print()
    print(render_figure10(ports))
    checks = ports.shape_checks()
    assert all(checks.values()), checks
