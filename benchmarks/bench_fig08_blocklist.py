"""Figure 8 — blocklisted NXDomains by threat category.

Paper: cross-referencing a 20 M random sample of the expired NXDomains
against the vendor blocklist (rate limits forced the sampling) finds
483,887 blocklisted domains: 79% malware, 9% grayware, 8% phishing,
4% C&C.  The bench reproduces the sampled, rate-limited cross-reference
and checks the category shape.
"""

from repro.core.origin import blocklist_census
from repro.core.reports import render_figure8
from repro.rand import make_rng


def test_fig08_blocklist_census(benchmark, trace):
    # Each benchmark round burns API budget; advance the token-bucket
    # window per call so rounds don't starve each other.
    clock = {"now": 0}

    def run():
        clock["now"] += trace.blocklist.rate_limit.window_seconds
        return blocklist_census(
            trace, sample_ratio=0.5, rng=make_rng(2), now=clock["now"]
        )

    census = benchmark(run)
    print()
    print(render_figure8(census))
    checks = census.shape_checks()
    assert all(checks.values()), checks
