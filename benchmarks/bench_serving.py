"""Serving-tier benchmarks: overload protection must not cost identity.

Contracts of :mod:`repro.serving` (see ``docs/RESILIENCE.md``):

- **result identity** — a non-degraded answer from the tier is
  bit-identical to calling the store directly, in both the
  deterministic simulation mode and the threaded mode (hard gate
  everywhere, including CI);
- **sweep determinism** — the overload sweep replays bit-identically
  from a seed: same per-point outcome counts and same injection-log
  fingerprints on every run, and the sweep's own regression gates
  (clean baseline perfectly clean, zero unhandled exceptions, bounded
  answered-query p99, answered-fraction floor) hold (hard gate);
- **overload shape** — the storm point actually exercises the
  protection ladder (something shed / rate-limited / queue-refused)
  and the stuck point actually cancels wedged workers (hard gate:
  a sweep that never sheds is not testing overload);
- **throughput** — the threaded tier sustains a floor of queries per
  second over a mixed workload (printed everywhere, asserted only
  off-CI per the bench_trace_scale convention).

``time.perf_counter`` is a monotonic interval timer, not a wall-clock
read, so it is (deliberately) outside REP001's ban list.
"""

import os
import time

import numpy as np

from repro.clock import SECONDS_PER_DAY, STUDY_START, SimClock, date_to_epoch
from repro.serving import (
    Disposition,
    QueryServer,
    overload_sweep,
    scripted_workload,
    synthetic_store,
)
from repro.serving.sweep import verify_identity

IN_CI = bool(os.environ.get("CI"))

SEED = 0
STORE_DOMAINS = 400
SWEEP_QUERIES = 120
THREADED_QUERIES = 1_500
#: Off-CI floor for the threaded tier over the mixed workload.
MIN_QPS = 150.0


def _start() -> int:
    return date_to_epoch(STUDY_START) + 400 * SECONDS_PER_DAY


def test_serving_identity_and_sweep_determinism():
    # -- hard gate: simulated-mode identity -------------------------------
    db = synthetic_store(SEED, domains=STORE_DOMAINS)
    workload = scripted_workload(db, SEED, queries=80, start=_start())
    server = QueryServer(db, SimClock(_start()))
    records = server.serve(workload)
    assert server.stats.unhandled == 0
    assert all(record.answered for record in records)
    assert verify_identity(db, records, limit=len(records)) == 0

    # -- hard gates: sweep determinism + its regression gates -------------
    first = overload_sweep(seed=SEED, domains=STORE_DOMAINS, queries=SWEEP_QUERIES)
    second = overload_sweep(seed=SEED, domains=STORE_DOMAINS, queries=SWEEP_QUERIES)
    assert [point.counts for point in first.points] == [
        point.counts for point in second.points
    ]
    assert [point.fingerprint for point in first.points] == [
        point.fingerprint for point in second.points
    ]
    assert first.regressions() == []

    # -- hard gates: the ladder is exercised, not merely reachable --------
    by_label = {point.label: point for point in first.points}
    storm = by_label["storm"]
    refused = (
        storm.count(Disposition.SHED)
        + storm.count(Disposition.RATE_LIMITED)
        + storm.count(Disposition.QUEUE_FULL)
    )
    assert refused > 0, "storm point never engaged the admission ladder"
    assert by_label["stuck"].count(Disposition.CANCELLED) > 0
    assert storm.unhandled == 0 and storm.p99_latency <= first.latency_bound

    for point in first.points:
        print(point.row())


def test_serving_threaded_throughput_and_identity():
    db = synthetic_store(SEED, domains=STORE_DOMAINS)
    workload = scripted_workload(
        db, SEED, queries=THREADED_QUERIES, start=_start()
    )
    server = QueryServer(db, SimClock(_start()))

    elapsed_start = time.perf_counter()
    records = server.serve_threaded(workload, threads=4)
    elapsed = time.perf_counter() - elapsed_start

    # -- hard gates: everything answered, results bit-identical -----------
    assert len(records) == THREADED_QUERIES
    assert server.stats.unhandled == 0
    assert all(record.answered for record in records)
    checked = 0
    for record in records:
        if record.disposition is not Disposition.SERVED:
            continue
        direct = record.request.query.execute(db)
        if isinstance(direct, np.ndarray):
            assert np.array_equal(record.value, direct)
        else:
            assert record.value == direct
        checked += 1
        if checked >= 50:
            break
    assert checked > 0

    qps = THREADED_QUERIES / max(elapsed, 1e-9)
    cached = server.stats.count(Disposition.CACHED)
    print(
        f"threaded serving: {THREADED_QUERIES} queries in {elapsed:.2f}s "
        f"({qps:,.0f} qps, {cached} cache hits)"
    )
    if not IN_CI:
        assert qps >= MIN_QPS, f"threaded tier sustained only {qps:.0f} qps"
