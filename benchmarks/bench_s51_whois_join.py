"""§5.1 — joining NXDomains against WHOIS history.

Paper: of 146 B NXDomains, 91,545,561 (0.06%) have a historic WHOIS
registration record; the rest were never registered.  Our population
inflates the expired share (documented in DESIGN.md) but preserves the
never-registered >> expired ordering the analysis rests on.
"""

from repro.core.origin import whois_join
from repro.core.reports import render_whois_join


def test_s51_whois_join(benchmark, trace):
    domains = [record.domain for record in trace.population]
    result = benchmark(whois_join, domains, trace.whois)
    print()
    print(render_whois_join(result))
    checks = result.shape_checks()
    assert all(checks.values()), checks
