"""§4.4 — the long-lived NXDomain cohort.

Paper: 1,018,964 NXDomains (of 146 M sampled) had been in non-existent
status for more than 5 years yet received 107,020,820 DNS queries as
of 2022 — the heavy tail that motivates the honeypot study.  The bench
regenerates the cohort (at a 2-year threshold, matching the trace's
9-year window and laptop population) and checks it is a real but small
minority, plus the Plohmann-style DGA registration-rate statistic the
paper cites in §5.1.
"""

from repro.core.origin import dga_registration_rate
from repro.core.reports import render_table
from repro.core.scale import long_lived_cohort


def test_s44_long_lived_cohort(benchmark, trace):
    cohort = benchmark(long_lived_cohort, trace.nx_db, 2.0)
    rate = dga_registration_rate(trace)
    print()
    print("§4.4 — long-lived NXDomain cohort / §5.1 — DGA registration rate")
    print(
        render_table(
            ["metric", "paper", "measured"],
            [
                (
                    "long-NX domains still queried",
                    "1,018,964 (>5y, of 146M)",
                    f"{cohort.domain_count:,} (>2y, of "
                    f"{cohort.population_domains:,})",
                ),
                (
                    "their total queries",
                    "107,020,820",
                    f"{cohort.total_queries:,}",
                ),
                (
                    "cohort share",
                    "0.7%",
                    f"{cohort.cohort_fraction:.1%}",
                ),
                (
                    "DGA domains ever registered",
                    "0.62% (Plohmann et al.)",
                    f"{rate.registration_rate:.2%} "
                    f"({rate.registered_dga:,}/{rate.total_dga:,})",
                ),
            ],
        )
    )
    checks = {**cohort.shape_checks(), **rate.shape_checks()}
    assert all(checks.values()), checks
