"""Figure 5 — NXDomains and their queries across days in NX status.

Paper: the number of NXDomains still receiving queries decreases
sharply over the first ten days (drop-catching and awareness), then
much more slowly; the query series tracks the domain series rather
than dropping faster — domains keep being queried despite being NX.
"""

from repro.core.reports import render_figure5
from repro.core.scale import lifespan_distribution


def test_fig05_lifespan(benchmark, trace):
    distribution = benchmark(lifespan_distribution, trace.nx_db, 60)
    print()
    print(render_figure5(distribution))
    checks = distribution.shape_checks()
    assert all(checks.values()), checks
