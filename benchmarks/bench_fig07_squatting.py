"""Figure 7 — squatting NXDomains by attack type.

Paper: among 91 M expired NXDomains, 90,604 are squatting domains —
45,175 typosquatting, 38,900 combosquatting, 6,090 dotsquatting,
313 bitsquatting, and 126 homosquatting.  The bench runs the unified
squatting detector over the expired population and checks the type
ordering (typo ≈ combo >> dot >> bit ≥ homo).
"""

from repro.core.origin import squatting_accuracy, squatting_census
from repro.core.reports import render_figure7
from repro.squatting.detector import SquattingDetector


def test_fig07_squatting_census(benchmark, trace):
    detector = SquattingDetector()
    census = benchmark(squatting_census, trace, detector)
    print()
    print(render_figure7(census))
    checks = census.shape_checks()
    assert all(checks.values()), checks

    # Quality against planted ground truth (the commercial classifier's
    # accuracy is unreported; ours is measured).
    accuracy = squatting_accuracy(trace, detector)
    print(
        f"ground truth: detection {accuracy.detection_rate:.1%}, "
        f"type accuracy {accuracy.type_accuracy:.1%}, "
        f"false positives {accuracy.false_positives}"
    )
    quality = accuracy.shape_checks()
    assert all(quality.values()), quality
