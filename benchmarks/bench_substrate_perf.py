"""Substrate micro-benchmarks.

Not paper figures — these track the performance of the building blocks
the study leans on, so substrate regressions show up next to the
experiment benches: wire codec throughput, full iterative resolution,
cached resolution, passive-DNS ingest (scalar and batch), indexed
per-domain series queries, and classifier throughput.
"""

import numpy as np
import pytest

from repro.dga.detector import DgaDetector
from repro.dga.features import extract_features
from repro.dns.hierarchy import DnsHierarchy
from repro.dns.message import DnsMessage, RCode, make_soa_record
from repro.dns.name import DomainName
from repro.dns.tld import TldRegistry
from repro.dns.wire import decode_message, encode_message
from repro.passivedns.database import PassiveDnsDatabase
from repro.rand import make_rng
from repro.squatting.detector import SquattingDetector


@pytest.fixture(scope="module")
def hierarchy():
    h = DnsHierarchy.build(TldRegistry.default())
    h.register_domain(DomainName("example.com"), "93.184.216.34")
    return h


def test_perf_wire_encode(benchmark):
    query = DnsMessage.make_query(DomainName("www.example.com"), msg_id=7)
    response = query.make_response(
        rcode=RCode.NXDOMAIN,
        authorities=[make_soa_record(DomainName("example.com"))],
    )
    wire = benchmark(encode_message, response)
    assert len(wire) > 12


def test_perf_wire_decode(benchmark):
    query = DnsMessage.make_query(DomainName("www.example.com"), msg_id=7)
    wire = encode_message(
        query.make_response(
            rcode=RCode.NXDOMAIN,
            authorities=[make_soa_record(DomainName("example.com"))],
        )
    )
    message = benchmark(decode_message, wire)
    assert message.is_nxdomain()


def test_perf_iterative_resolution(benchmark, hierarchy):
    resolver = hierarchy.make_iterative_resolver()
    result = benchmark(resolver.resolve, DomainName("www.example.com"))
    assert result.addresses() == ["93.184.216.34"]


def test_perf_cached_resolution(benchmark, hierarchy):
    resolver = hierarchy.make_recursive_resolver()
    resolver.resolve(DomainName("www.example.com"), now=0)

    def cached():
        return resolver.resolve(DomainName("www.example.com"), now=1)

    result = benchmark(cached)
    assert result.from_cache


def test_perf_database_ingest(benchmark):
    domains = [DomainName(f"bulk-{i % 500}.com") for i in range(2_000)]

    def ingest():
        db = PassiveDnsDatabase()
        for i, domain in enumerate(domains):
            db.add(domain, timestamp=i * 60, count=1)
        return db

    db = benchmark(ingest)
    assert db.total_responses() == 2_000


def test_perf_database_ingest_batch(benchmark):
    """Columnar batch ingest of the same workload as the scalar bench."""
    domains = [DomainName(f"bulk-{i % 500}.com") for i in range(2_000)]
    times = np.arange(2_000, dtype=np.int64) * 60
    counts = np.ones(2_000, dtype=np.int64)

    def ingest():
        db = PassiveDnsDatabase()
        ids = db.intern_many(domains)
        db.add_batch(ids, times, counts)
        return db

    db = benchmark(ingest)
    assert db.total_responses() == 2_000
    reference = PassiveDnsDatabase()
    for i, domain in enumerate(domains):
        reference.add(domain, timestamp=i * 60, count=1)
    assert db.fingerprint() == reference.fingerprint()


@pytest.fixture(scope="module")
def series_db():
    db = PassiveDnsDatabase()
    rng = make_rng(0)
    n_domains, n_rows = 400, 120_000
    domains = [DomainName(f"series-{i}.com") for i in range(n_domains)]
    ids = db.intern_many(domains)
    row_ids = ids[rng.integers(0, n_domains, size=n_rows)]
    times = rng.integers(0, 400, size=n_rows).astype(np.int64) * 86_400
    db.add_batch(row_ids, times, np.ones(n_rows, dtype=np.int64))
    return db, domains


def test_perf_daily_series_indexed(benchmark, series_db):
    """CSR-indexed per-domain series (touches one domain's rows)."""
    db, domains = series_db
    target = domains[7]
    series = benchmark(db.daily_series_for, target, 0, 400 * 86_400)
    assert series.sum() == db.profile(target).total_queries


def test_perf_daily_series_scan(benchmark, series_db):
    """Reference full-column masked scan (the pre-index baseline)."""
    db, domains = series_db
    target = domains[7]
    series = benchmark(db._daily_series_scan, target, 0, 400 * 86_400)
    assert series.sum() == db.profile(target).total_queries


def test_perf_feature_extraction(benchmark):
    vector = benchmark(extract_features, "xkqzvwplfmrt.com")
    assert vector.shape[0] == 12


def test_perf_dga_classify_batch(benchmark, dga_detector: DgaDetector):
    batch = [f"label{i}x{'q' * (i % 7)}.com" for i in range(200)]
    flags = benchmark(dga_detector.classify, batch)
    assert len(flags) == 200


def test_perf_squatting_classify(benchmark):
    detector = SquattingDetector()
    match = benchmark(detector.classify, DomainName("gogle.com"))
    assert match is not None
