"""Figure 14 — gpclick.com victim phone country codes.

Paper: 55,829 victim phone numbers parsed out of the getTask.php
stream span four continents (Europe, Asia, America, Oceania) — the
botnet is no longer confined to the Russian-speaking users its 2013
disclosure described.
"""

from repro.core.reports import render_figure14
from repro.core.security import botnet_country_distribution, botnet_victim_analysis


def test_fig14_botnet_countries(benchmark, security_result):
    histogram = benchmark(botnet_country_distribution, security_result)
    print()
    print(render_figure14(histogram))
    analysis = botnet_victim_analysis(security_result)
    assert len(analysis.continent_histogram) >= 3
    assert histogram, "no victim country codes parsed"
    assert max(histogram, key=histogram.get) == "ru"
