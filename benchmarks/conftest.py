"""Shared artifacts for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The
expensive inputs — the 8-year trace, the trained DGA detector, and the
full honeypot run — are built once per session here; the benches then
time the *analysis* that produces each figure and print the rendered
output with its paper-shape checks.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the rendered figures inline.
"""

import pytest

from repro.core.security import SecurityRunResult, run_security_experiment
from repro.core.study import NxdomainStudy, StudyConfig
from repro.dga.detector import DgaDetector
from repro.rand import make_rng
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig, TraceResult

#: Bench-wide seed; the shape checks hold across seeds at this
#: population size (verified in the test suite's sweep).
BENCH_SEED = 0
BENCH_DOMAINS = 8_000
BENCH_SQUATS = 300
BENCH_HONEYPOT_SCALE = 0.01


@pytest.fixture(scope="session")
def trace() -> TraceResult:
    """The 8-year NXDomain trace all §4/§5 benches analyze."""
    config = TraceConfig(total_domains=BENCH_DOMAINS, squat_count=BENCH_SQUATS)
    return NxdomainTraceGenerator(seed=BENCH_SEED, config=config).generate()


@pytest.fixture(scope="session")
def dga_detector() -> DgaDetector:
    # Threshold 0.9 is the high-precision operating point the census
    # runs at (production in-line detectors minimize false positives);
    # the threshold-sweep ablation covers the rest of the curve.
    return DgaDetector.train_default(
        seed=BENCH_SEED, samples_per_family=200, threshold=0.9
    )


@pytest.fixture(scope="session")
def security_result() -> SecurityRunResult:
    """One full §6 honeypot run (six months, 19 domains, noise, filter)."""
    return run_security_experiment(
        make_rng(BENCH_SEED), scale=BENCH_HONEYPOT_SCALE
    )


@pytest.fixture(scope="session")
def study() -> NxdomainStudy:
    config = StudyConfig(
        trace_domains=BENCH_DOMAINS,
        squat_count=BENCH_SQUATS,
        honeypot_scale=BENCH_HONEYPOT_SCALE,
    )
    return NxdomainStudy(seed=BENCH_SEED, config=config)
