"""Ablation — negative caching's effect on observed NXDomain volume.

The passive DNS feed sits *above* resolver caches; RFC 2308 negative
caching therefore suppresses repeat NXDomain queries from the sensor's
view for the negative TTL.  This bench drives identical client query
streams through a sensor-tapped resolver with negative caching on and
off and measures how many NXDomain observations reach the channel —
the measurement-infrastructure effect the paper's §3.1 notes when
arguing caching does not distort Farsight's multi-vantage collection.
"""

from repro.core.reports import render_table
from repro.dns.hierarchy import DnsHierarchy
from repro.dns.name import DomainName
from repro.dns.tld import TldRegistry
from repro.passivedns.channel import SieChannel
from repro.passivedns.sensor import Sensor, SensorTappedResolver
from repro.rand import make_rng


def drive_clients(use_negative_cache: bool, queries: int = 2_000) -> int:
    """Replay a fixed query stream; return NXDomain observations."""
    rng = make_rng(17)
    hierarchy = DnsHierarchy.build(TldRegistry.default())
    hierarchy.register_domain(DomainName("alive.com"), "10.0.0.1")
    channel = SieChannel()
    observed = []
    channel.subscribe(observed.append)
    resolver = SensorTappedResolver(
        hierarchy.make_recursive_resolver(use_negative_cache=use_negative_cache),
        Sensor("tap", channel),
    )
    # A zipf-ish stream over 50 NXDomains plus one live domain,
    # replayed over a simulated day (repeat queries land inside
    # negative TTLs).
    nx_names = [DomainName(f"gone-{i}.com") for i in range(50)]
    now = 0
    for _ in range(queries):
        now += int(rng.integers(5, 60))
        if rng.random() < 0.1:
            resolver.resolve(DomainName("www.alive.com"), now=now)
        else:
            index = min(int(rng.pareto(1.0)), len(nx_names) - 1)
            resolver.resolve(nx_names[index], now=now)
    return len(observed)


def test_ablation_negative_caching(benchmark):
    with_cache = benchmark(drive_clients, True)
    without_cache = drive_clients(False)
    suppression = 1 - with_cache / without_cache
    print()
    print("Ablation — negative caching at the recursive resolver")
    print(
        render_table(
            ["configuration", "NX observations on channel"],
            [
                ("negative caching ON (RFC 2308)", with_cache),
                ("negative caching OFF", without_cache),
            ],
        )
    )
    print(f"suppression by negative caching: {suppression:.1%}")
    assert without_cache > with_cache
    assert suppression > 0.5  # repeat-heavy streams are mostly absorbed
