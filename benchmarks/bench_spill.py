"""Spill-store benchmarks: durable must not mean different (or slow).

Contracts of ``spill_dir=`` mode (see ``docs/RESILIENCE.md``):

- **byte-identity** — a spill-backed store answers ``fingerprint()``,
  the TLD histogram, the monthly series, and ``daily_series_for``
  byte/value-identically to the in-memory store built from the same
  trace seed (hard gate everywhere, including CI);
- **query latency** — the mmap-backed CSR path stays within
  ``SPILL_MAX_SLOWDOWN`` of the in-memory per-domain query, and the
  mmap-backed fingerprint within ``FINGERPRINT_MAX_SLOWDOWN`` of the
  in-memory one (timing ratios printed everywhere, asserted only
  off-CI per the bench_trace_scale convention);
- **recovery cost** — a clean reopen of a committed store must report
  ``RecoveryReport.clean()`` (hard gate: silent quarantine-on-reopen
  is a regression, not noise), a *warm* reopen must perform **zero**
  segment CRC streams (the verified-at cache structural gate), and a
  ``paranoid=True`` reopen must stream every segment; warm and
  paranoid times are printed so ``docs/PERFORMANCE.md`` can record the
  before/after, but only the structural counters are asserted — wall
  clock on shared runners is noise.

``time.perf_counter`` is a monotonic interval timer, not a wall-clock
read, so it is (deliberately) outside REP001's ban list.
"""

import os
import time

import numpy as np

from repro.passivedns.database import PassiveDnsDatabase
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

IN_CI = bool(os.environ.get("CI"))

TRACE_CONFIG = TraceConfig(total_domains=1_500, squat_count=60)
TRACE_SEED = 0
ROUNDS = 3
#: Off-CI gates: mmap-backed queries may pay page-cache and
#: per-part-gather overhead, but never an order of magnitude.
SPILL_MAX_SLOWDOWN = 8.0
FINGERPRINT_MAX_SLOWDOWN = 8.0


def _timed(fn):
    """Best-of-N wall time; best-of filters scheduler noise."""
    best = None
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_spill_store_is_byte_identical_and_fast_enough(tmp_path):
    trace = NxdomainTraceGenerator(
        seed=TRACE_SEED, config=TRACE_CONFIG
    ).generate()
    memory = trace.nx_db
    disk = trace.spilled(tmp_path / "spill").nx_db

    # -- hard gates: byte/value identity everywhere -----------------------
    assert disk.fingerprint() == memory.fingerprint()
    assert disk.tld_histogram() == memory.tld_histogram()
    assert disk.monthly_response_series() == memory.monthly_response_series()
    probe_domains = memory.all_domains()[:50]
    for domain in probe_domains:
        profile = memory.profile(domain)
        assert np.array_equal(
            memory.daily_series_for(domain, profile.first_seen, 120),
            disk.daily_series_for(domain, profile.first_seen, 120),
        )

    # -- timing ratios (printed everywhere, asserted off-CI) --------------
    target = probe_domains[11]
    start = memory.profile(target).first_seen
    memory.daily_series_for(target, start, 120)  # prime both CSR indexes
    disk.daily_series_for(target, start, 120)
    memory_series_time, _ = _timed(
        lambda: memory.daily_series_for(target, start, 120)
    )
    disk_series_time, _ = _timed(
        lambda: disk.daily_series_for(target, start, 120)
    )

    def fingerprint_uncached(db):
        # The fingerprint is generation-cached; poke the cache key out
        # by rebuilding from a cleared cache via a fresh cache entry.
        db._agg_cache = {}  # noqa: SLF001 - bench measures the rebuild
        return db._build_fingerprint()  # noqa: SLF001

    memory_fpr_time, _ = _timed(lambda: fingerprint_uncached(memory))
    disk_fpr_time, _ = _timed(lambda: fingerprint_uncached(disk))

    warm_time, reopened = _timed(
        lambda: PassiveDnsDatabase(spill_dir=tmp_path / "spill")
    )
    # Identity gate + clean-recovery gate: a clean reopen that rejects
    # a generation or quarantines anything must fail the bench loudly.
    assert reopened.fingerprint() == memory.fingerprint()
    warm_report = reopened.spill.last_recovery
    assert warm_report.clean(), warm_report.summary()
    # Structural reopen-cost gate: a warm (unchanged) reopen performs
    # ZERO segment CRC streams — every verification is a stat+CRC
    # cache hit — while a paranoid reopen streams every segment.
    assert warm_report.segments_crc_streamed == 0
    assert warm_report.cache_hits >= len(reopened.spill.segments())

    paranoid_time, paranoid = _timed(
        lambda: PassiveDnsDatabase(
            spill_dir=tmp_path / "spill", spill_paranoid=True
        )
    )
    paranoid_report = paranoid.spill.last_recovery
    assert paranoid_report.clean(), paranoid_report.summary()
    assert paranoid_report.segments_crc_streamed == len(
        paranoid.spill.segments()
    )
    assert paranoid.fingerprint() == memory.fingerprint()

    series_ratio = disk_series_time / memory_series_time
    fpr_ratio = disk_fpr_time / memory_fpr_time
    print()
    print(
        f"daily_series_for   memory: {memory_series_time * 1e6:8.1f} us   "
        f"spill: {disk_series_time * 1e6:8.1f} us   ({series_ratio:.2f}x)"
    )
    print(
        f"fingerprint        memory: {memory_fpr_time * 1e3:8.1f} ms   "
        f"spill: {disk_fpr_time * 1e3:8.1f} ms   ({fpr_ratio:.2f}x)"
    )
    print(
        f"reopen  warm (0 streams): {warm_time * 1e3:8.1f} ms   "
        f"paranoid (full scan): {paranoid_time * 1e3:8.1f} ms   "
        f"({reopened.row_count():,} rows, "
        f"{len(reopened.spill.segments())} segment(s))"
    )
    if not IN_CI:
        assert series_ratio < SPILL_MAX_SLOWDOWN, (
            f"spill-backed daily_series_for is {series_ratio:.1f}x the "
            f"in-memory path; contract is < {SPILL_MAX_SLOWDOWN}x"
        )
        assert fpr_ratio < FINGERPRINT_MAX_SLOWDOWN, (
            f"spill-backed fingerprint is {fpr_ratio:.1f}x the in-memory "
            f"path; contract is < {FINGERPRINT_MAX_SLOWDOWN}x"
        )
