"""Meta-bench — shape robustness across seeds.

A reproduction whose figures only hold at one lucky seed is not a
reproduction.  This bench re-runs every §4 scale shape check across
three independent seeds at a mid-size population and requires each
check to pass on every seed.  (The full §4+§5 sweep is available as
``repro-nxd validate``.)
"""

from repro.core.reports import render_table
from repro.core.study import StudyConfig
from repro.core.validation import fault_sweep, validate_shapes

SEEDS = [11, 12, 13]
CONFIG = StudyConfig(
    trace_domains=4_000,
    squat_count=160,
    expiry_timeline_sample=400,
)


def test_shape_robustness_across_seeds(benchmark):
    report = benchmark.pedantic(
        validate_shapes,
        args=(SEEDS, CONFIG),
        kwargs={"include_origin": False},
        rounds=1,
        iterations=1,
    )
    rows = [
        (name, f"{rate:.0%}", ",".join(map(str, failing)) or "-")
        for name, rate, failing in report.worst()
    ]
    print()
    print(f"Shape robustness across seeds {SEEDS} at {CONFIG.trace_domains:,} domains")
    print(render_table(["check", "pass rate", "failing seeds"], rows))
    assert report.robust(threshold=1.0), report.worst()


def test_shape_robustness_under_collection_faults(benchmark):
    """§4 shapes must survive realistically lossy collection.

    Each seed's trace is degraded through the fault pipeline at 5%
    composite loss (drops, duplicates, transient store failures); the
    gate is that no shape check fails at 5% loss that did not already
    fail on the clean trace.
    """
    report = benchmark.pedantic(
        fault_sweep,
        args=(SEEDS, CONFIG),
        kwargs={"rates": (0.0, 0.05)},
        rounds=1,
        iterations=1,
    )
    print()
    print(f"Degradation curve across seeds {SEEDS} at {CONFIG.trace_domains:,} domains")
    print(
        render_table(
            ["fault rate", "delivered", "check pass rate",
             "store fail/replayed", "dups suppressed"],
            report.rows(),
        )
    )
    assert report.regressions(0.05) == [], report.regressions(0.05)
    degraded = report.points[-1]
    assert 0.90 <= degraded.delivered_fraction <= 0.99
    assert degraded.store_failures == degraded.replay_recovered
