"""§6.3 narrative findings — who crawls the registered NXDomains.

Two results from the running text:

1. conf-cdn.com's file-grabber traffic is 95.1% email-provider image
   crawlers (Gmail 30,884, Yahoo 13,528, Outlook 5,483 of 53,094) —
   the domain's assets are still referenced from circulating email;
2. search-engine crawling correlates with the domain's former region:
   porno-komiksy.com (ex-Russia) is crawled predominantly by mail.ru,
   resheba.online by Google/Bing-class engines for its US-facing use.
"""

from repro.core.reports import render_table
from repro.core.security import (
    email_crawler_breakdown,
    regional_correlation_checks,
    search_engine_breakdown,
)


def test_s63_crawler_origins(benchmark, security_result):
    breakdown = benchmark(email_crawler_breakdown, security_result)
    print()
    print("§6.3 — conf-cdn.com file grabbers (paper: 95.1% email crawlers)")
    rows = [
        (provider, count)
        for provider, count in sorted(
            breakdown.by_provider.items(), key=lambda kv: kv[1], reverse=True
        )
    ]
    print(render_table(["provider", "requests"], rows))
    print(
        f"email share of file grabbers: {breakdown.email_share:.1%} "
        f"({breakdown.email_crawler_total:,}/{breakdown.file_grabber_total:,})"
    )
    checks = breakdown.shape_checks()
    assert all(checks.values()), checks

    print("\n§6.3 — regional search-engine correlation")
    for domain in ("porno-komiksy.com", "gpclick.com"):
        histogram = search_engine_breakdown(security_result, domain)
        print(f"  {domain}: {histogram}")
    regional = regional_correlation_checks(security_result)
    assert all(regional.values()), regional
