"""Figure 13 — in-app browsers used by domain visitors.

Paper: of 3,808 in-app browser requests, WhatsApp leads (26%), with
Facebook (16%), Twitter (12%), Instagram (11%), WeChat, DingTalk, and
QQ following — short-messaging and social platforms dominate,
suggesting the NXDomain links still circulate there.
"""

from repro.core.reports import render_figure13
from repro.core.security import inapp_browser_distribution, inapp_shape_checks


def test_fig13_inapp_browsers(benchmark, security_result):
    histogram = benchmark(inapp_browser_distribution, security_result)
    checks = inapp_shape_checks(histogram)
    print()
    print(render_figure13(histogram, checks))
    assert all(checks.values()), checks
