"""Emit ``BENCH_substrate.json`` — the substrate performance snapshot.

Runs the columnar-store contracts from ``bench_trace_scale.py`` on a
canonical seeded workload and writes a machine-readable summary:

- a ``contracts`` section that is **deterministic** (store
  fingerprints of the canonical workloads, batch-vs-scalar equality,
  serial-vs-sharded generation identity, parallel-vs-serial aggregate
  identity at jobs ∈ {1, 2, 4}, fast-lane-vs-record-path identity on
  clean and degraded streams) — diffs here mean ingest, generation, or
  aggregation *semantics* changed, and the committed copy at the repo
  root is the regression anchor;
- a ``timings`` section that is informational (speedup ratios measured
  on whatever host ran the script) — CI uploads it as an artifact so
  trends are visible, but it is not diffed or gated.

Usage::

    PYTHONPATH=src python benchmarks/emit_substrate_baseline.py [OUT]

``OUT`` defaults to ``BENCH_substrate.json`` in the repository root.
``time.perf_counter`` is a monotonic interval timer, not a wall-clock
read, so it is (deliberately) outside REP001's ban list.
"""

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.clock import STUDY_START, date_to_epoch
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.faults import FaultPlan
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.pipeline import ResilientIngestPipeline
from repro.passivedns.record import DnsObservation
from repro.passivedns.spill import atomic_write_bytes
from repro.rand import make_rng
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

VERSION = 2
N_ROWS = 60_000
N_DOMAINS = 600
TRACE_CONFIG = TraceConfig(total_domains=1_500, squat_count=60)
TRACE_JOBS = 4
AGG_JOBS = 4
PIPE_ROWS = 30_000
#: The degraded fast-lane contract replays this plan at seed 7.
DEGRADED_PLAN = FaultPlan(
    drop_rate=0.05,
    duplicate_rate=0.1,
    reorder_rate=0.2,
    reorder_depth=4,
    store_failure_rate=0.1,
)


def _timed(fn, rounds=3):
    """Best-of-N wall time; best-of filters scheduler noise."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _workload():
    rng = make_rng(0)
    domains = [DomainName(f"scale-{i}.com") for i in range(N_DOMAINS)]
    picks = rng.integers(0, N_DOMAINS, size=N_ROWS)
    times = rng.integers(0, 500, size=N_ROWS).astype(np.int64) * 86_400
    counts = rng.integers(1, 6, size=N_ROWS).astype(np.int64)
    return domains, picks, times, counts


def _scalar_ingest(workload):
    domains, picks, times, counts = workload
    db = PassiveDnsDatabase()
    for pick, timestamp, count in zip(
        picks.tolist(), times.tolist(), counts.tolist()
    ):
        db.add(domains[pick], timestamp, count)
    return db


def _batch_ingest(workload):
    domains, picks, times, counts = workload
    db = PassiveDnsDatabase()
    ids = db.intern_many(domains)
    db.add_batch(ids[picks], times, counts)
    return db


def _aggregate_bundle(db):
    """Every generation-keyed aggregate, as one comparable value."""
    domains_series, queries_series = db.lifespan_decay(60)
    return (
        db.monthly_response_series(),
        db.tld_histogram(),
        domains_series.tobytes(),
        queries_series.tobytes(),
        db.digest(),
        db.fingerprint(),
    )


def _parallel_aggregates(workload):
    """Aggregate identity at jobs ∈ {1, 2, 4} plus serial/parallel
    rebuild timings (cache cleared per round, columns stay primed)."""
    domains, picks, times, counts = workload

    def build(jobs):
        db = PassiveDnsDatabase(aggregate_jobs=jobs)
        ids = db.intern_many(domains)
        db.add_batch(ids[picks], times, counts)
        return db

    stores = {jobs: build(jobs) for jobs in (1, 2, AGG_JOBS)}
    bundles = {jobs: _aggregate_bundle(db) for jobs, db in stores.items()}
    identical = bundles[2] == bundles[1] and bundles[AGG_JOBS] == bundles[1]

    def rebuild(db):
        db._agg_cache.clear()  # noqa: SLF001
        return _aggregate_bundle(db)

    serial_time, _ = _timed(lambda: rebuild(stores[1]))
    parallel_time, _ = _timed(lambda: rebuild(stores[AGG_JOBS]))
    return identical, serial_time, parallel_time


def _pipeline_observations():
    t0 = date_to_epoch(STUDY_START)
    return [
        DnsObservation(
            qname=DomainName(f"host{i % 800}.example{i % 13}.com"),
            rcode=RCode.NXDOMAIN,
            timestamp=t0 + i * 60,
            sensor_id="s1",
        )
        for i in range(PIPE_ROWS)
    ]


def _run_pipeline(observations, fast_lane, plan=None):
    pipeline = ResilientIngestPipeline(
        schedule=plan.schedule(7) if plan is not None else None,
        fast_lane=fast_lane,
    )
    pipeline.ingest_many(observations)
    pipeline.finish()
    return pipeline


def _fast_lane(observations):
    """Fast-lane identity (clean + degraded) and clean-path timings."""
    fast_time, fast = _timed(lambda: _run_pipeline(observations, True))
    record_time, record = _timed(lambda: _run_pipeline(observations, False))
    clean_match = (
        fast.database.fingerprint() == record.database.fingerprint()
        and fast.stats == record.stats
    )
    degraded_fast = _run_pipeline(observations, True, plan=DEGRADED_PLAN)
    degraded_record = _run_pipeline(observations, False, plan=DEGRADED_PLAN)
    degraded_match = (
        degraded_fast.database.fingerprint()
        == degraded_record.database.fingerprint()
        and degraded_fast.stats == degraded_record.stats
    )
    return clean_match, degraded_match, fast_time, record_time, fast


def build_snapshot():
    """Measure the canonical workloads and return the summary dict."""
    workload = _workload()
    scalar_time, scalar_db = _timed(lambda: _scalar_ingest(workload))
    batch_time, batch_db = _timed(lambda: _batch_ingest(workload))
    aggregates_match, agg_serial_time, agg_parallel_time = (
        _parallel_aggregates(workload)
    )
    observations = _pipeline_observations()
    clean_match, degraded_match, fast_time, record_time, fast = _fast_lane(
        observations
    )

    target = workload[0][11]
    window = (0, 500 * 86_400)
    batch_db.daily_series_for(target, *window)  # prime the CSR index
    indexed_time, indexed = _timed(
        lambda: batch_db.daily_series_for(target, *window)
    )
    scan_time, scanned = _timed(
        lambda: batch_db._daily_series_scan(target, *window)  # noqa: SLF001
    )

    serial_time, serial = _timed(
        lambda: NxdomainTraceGenerator(seed=0, config=TRACE_CONFIG).generate()
    )
    sharded_time, sharded = _timed(
        lambda: NxdomainTraceGenerator(seed=0, config=TRACE_CONFIG).generate(
            jobs=TRACE_JOBS
        )
    )

    return {
        "version": VERSION,
        "workload": {
            "ingest_rows": N_ROWS,
            "ingest_domains": N_DOMAINS,
            "trace_domains": TRACE_CONFIG.total_domains,
            "trace_jobs": TRACE_JOBS,
            "aggregate_jobs": AGG_JOBS,
            "pipeline_rows": PIPE_ROWS,
        },
        "contracts": {
            "ingest_fingerprint": batch_db.fingerprint(),
            "batch_matches_scalar": (
                batch_db.fingerprint() == scalar_db.fingerprint()
            ),
            "indexed_series_matches_scan": bool(
                np.array_equal(indexed, scanned)
            ),
            "trace_nx_fingerprint": serial.nx_db.fingerprint(),
            "trace_pre_expiry_fingerprint": (
                serial.pre_expiry_db.fingerprint()
            ),
            "sharded_matches_serial": (
                serial.nx_db.fingerprint() == sharded.nx_db.fingerprint()
                and serial.pre_expiry_db.fingerprint()
                == sharded.pre_expiry_db.fingerprint()
            ),
            "parallel_aggregates_match_serial": aggregates_match,
            "fast_lane_fingerprint": fast.database.fingerprint(),
            "fast_lane_matches_record_path": clean_match,
            "fast_lane_matches_record_path_degraded": degraded_match,
        },
        "timings": {
            "scalar_ingest_ms": round(scalar_time * 1e3, 2),
            "batch_ingest_ms": round(batch_time * 1e3, 2),
            "batch_speedup": round(scalar_time / batch_time, 1),
            "series_scan_us": round(scan_time * 1e6, 1),
            "series_indexed_us": round(indexed_time * 1e6, 1),
            "index_speedup": round(scan_time / indexed_time, 1),
            "serial_generate_ms": round(serial_time * 1e3, 1),
            "sharded_generate_ms": round(sharded_time * 1e3, 1),
            "aggregate_serial_ms": round(agg_serial_time * 1e3, 1),
            "aggregate_jobs4_ms": round(agg_parallel_time * 1e3, 1),
            "aggregate_speedup": round(agg_serial_time / agg_parallel_time, 2),
            "record_path_ms": round(record_time * 1e3, 1),
            "fast_lane_ms": round(fast_time * 1e3, 1),
            "fast_lane_speedup": round(record_time / fast_time, 2),
            "fast_lane_rows_per_sec": round(PIPE_ROWS / fast_time),
        },
    }


def main(argv):
    """CLI entry point: write the snapshot and fail on broken contracts."""
    default_out = Path(__file__).resolve().parents[1] / "BENCH_substrate.json"
    out = Path(argv[1]) if len(argv) > 1 else default_out
    snapshot = build_snapshot()
    # The committed copy is the regression anchor; never leave it torn.
    atomic_write_bytes(
        out, (json.dumps(snapshot, indent=2) + "\n").encode("utf-8")
    )
    print(f"wrote {out}")
    for name, value in snapshot["contracts"].items():
        if value is False:
            raise SystemExit(f"substrate contract broken: {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
