"""Ablation — two-stage empirical filtering vs naive hostname filtering.

§6.1 argues that simple filters ("keep requests with a correct Host
header") cannot remove establishment noise because services like Let's
Encrypt use correct hostnames.  This bench quantifies that: the naive
filter keeps essentially all contamination, while the calibrated
two-stage filter removes it without touching genuine traffic.
"""

from repro.core.reports import render_table
from repro.honeypot.filtering import TwoStageFilter
from repro.rand import make_rng
from repro.workloads.control import (
    generate_control_traffic,
    generate_no_hosting_baseline,
)
from repro.workloads.domains import registered_domain_profiles
from repro.workloads.honeytraffic import HoneypotTrafficGenerator


def test_ablation_filtering(benchmark):
    rng = make_rng(5)
    hosted = {p.domain for p in registered_domain_profiles()}
    generator = HoneypotTrafficGenerator(rng, scale=0.002)
    requests = generator.generate(include_noise=True)
    noise_filter = TwoStageFilter.calibrated(
        generate_no_hosting_baseline(rng), generate_control_traffic(rng)
    )

    kept_two_stage, stats = benchmark(noise_filter.apply, requests)

    # Naive filter: correct hostname only.
    kept_naive = [r for r in requests if r.host in hosted]

    def contamination(kept):
        return sum(
            1
            for r in kept
            if r.path.startswith("/.well-known")
            or noise_filter.is_scanner_noise(r)
        )

    rows = [
        ("no filtering", len(requests), contamination(requests)),
        ("naive hostname filter", len(kept_naive), contamination(kept_naive)),
        ("two-stage filter (§6.1)", len(kept_two_stage), contamination(kept_two_stage)),
    ]
    print()
    print("Ablation — noise filtering strategies")
    print(render_table(["strategy", "requests kept", "noise remaining"], rows))

    assert contamination(kept_naive) > 0, "naive filter should miss noise"
    assert contamination(kept_two_stage) == 0
    # Genuine traffic survives: > 90% of the input was genuine.
    assert stats.kept / stats.input_requests > 0.9
