"""Trace-generation and columnar-ingest scale benchmarks.

Checks the performance contracts of this repo's ingest→aggregate
vectorization:

- **batch vs scalar ingest** — :meth:`PassiveDnsDatabase.add_batch`
  must land the same store as row-by-row :meth:`add` (fingerprint
  equality, the hard gate everywhere) and be >= 5x faster (asserted
  only off-CI, where wall time is meaningful);
- **indexed vs scanned per-domain series** — the CSR-indexed
  :meth:`daily_series_for` must match the reference masked scan
  exactly and be >= 10x faster on a store where the target domain
  owns a small fraction of the rows;
- **serial vs sharded generation** — ``generate(jobs=4)`` must be
  fingerprint-identical to ``generate(jobs=1)`` (hard gate); the
  wall-time comparison is printed for the record.  Sharded generation
  only wins on hosts with spare cores and big populations, so no
  speedup is asserted anywhere.
- **parallel vs serial aggregates** — every generation-keyed aggregate
  (monthly series, TLD histogram, lifespan decay, digest, fingerprint)
  must be bit-identical at ``aggregate_jobs`` ∈ {1, 2, 4} (hard gate);
  the >= 2x wall-time contract at 4 jobs only holds with 4 real cores,
  so it is asserted off-CI on such hosts and printed elsewhere.
- **fast lane vs record-at-a-time ingest** — the pipeline's batched
  clean-stretch lane must land a fingerprint-identical store (hard
  gate) and beat the record path; the win is bounded because channel
  dispatch and admission stay per-record, so the floor is modest.

``time.perf_counter`` is a monotonic interval timer, not a wall-clock
read, so it is (deliberately) outside REP001's ban list.
"""

import os
import time

import numpy as np
import pytest

from repro.clock import STUDY_START, date_to_epoch
from repro.dns.message import RCode
from repro.dns.name import DomainName
from repro.passivedns.database import PassiveDnsDatabase
from repro.passivedns.pipeline import ResilientIngestPipeline
from repro.passivedns.record import DnsObservation
from repro.rand import make_rng
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

#: Batch ingest must beat scalar ingest by this factor (off-CI only).
BATCH_MIN_SPEEDUP = 5.0
#: Indexed per-domain series must beat the masked scan by this factor.
INDEX_MIN_SPEEDUP = 10.0
#: Chunk-parallel aggregates at 4 jobs must beat serial by this factor
#: — but only where 4 real cores exist (off-CI, cpu_count >= 4).
PARALLEL_AGG_MIN_SPEEDUP = 2.0
#: The fast lane removes the per-row store work but shares per-record
#: channel dispatch and admission with the record path, so its floor
#: is modest (measured ~1.3x on one core).
FAST_LANE_MIN_SPEEDUP = 1.1
ROUNDS = 3
#: Timing ratios are informational on CI; structural contracts
#: (fingerprint equality, identical series) are the hard gates
#: everywhere.
IN_CI = bool(os.environ.get("CI"))

N_ROWS = 60_000
N_DOMAINS = 600
#: The series bench runs over a bigger store (built via batch ingest,
#: so it costs little) — the index's edge grows with rows-per-store /
#: rows-per-domain, and a small store understates it.
SERIES_ROWS = 400_000
SERIES_DOMAINS = 2_000
TRACE_CONFIG = TraceConfig(total_domains=1_500, squat_count=60)
TRACE_JOBS = 4


def _timed(fn):
    """Best-of-N wall time; best-of filters scheduler noise."""
    best = None
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def workload():
    """One synthetic row set shared by the ingest and series benches."""
    rng = make_rng(0)
    domains = [DomainName(f"scale-{i}.com") for i in range(N_DOMAINS)]
    picks = rng.integers(0, N_DOMAINS, size=N_ROWS)
    times = rng.integers(0, 500, size=N_ROWS).astype(np.int64) * 86_400
    counts = rng.integers(1, 6, size=N_ROWS).astype(np.int64)
    return domains, picks, times, counts


def test_batch_ingest_beats_scalar(workload):
    domains, picks, times, counts = workload

    def scalar():
        db = PassiveDnsDatabase()
        for pick, timestamp, count in zip(
            picks.tolist(), times.tolist(), counts.tolist()
        ):
            db.add(domains[pick], timestamp, count)
        return db

    def batch():
        db = PassiveDnsDatabase()
        ids = db.intern_many(domains)
        db.add_batch(ids[picks], times, counts)
        return db

    scalar_time, scalar_db = _timed(scalar)
    batch_time, batch_db = _timed(batch)
    speedup = scalar_time / batch_time
    print()
    print(
        f"scalar ingest: {scalar_time * 1e3:8.1f} ms   "
        f"batch ingest: {batch_time * 1e3:8.1f} ms   "
        f"({speedup:.1f}x, {N_ROWS} rows)"
    )
    # Hard gate: the batch path is a pure optimization — same store.
    assert batch_db.fingerprint() == scalar_db.fingerprint()
    assert batch_db.total_responses() == scalar_db.total_responses()
    if not IN_CI:
        assert speedup > BATCH_MIN_SPEEDUP, (
            f"batch ingest speedup {speedup:.1f}x; "
            f"contract is > {BATCH_MIN_SPEEDUP}x"
        )


def test_indexed_series_beats_scan():
    rng = make_rng(1)
    domains = [DomainName(f"series-{i}.com") for i in range(SERIES_DOMAINS)]
    db = PassiveDnsDatabase()
    ids = db.intern_many(domains)
    db.add_batch(
        ids[rng.integers(0, SERIES_DOMAINS, size=SERIES_ROWS)],
        rng.integers(0, 500, size=SERIES_ROWS).astype(np.int64) * 86_400,
        rng.integers(1, 6, size=SERIES_ROWS).astype(np.int64),
    )
    target = domains[11]
    window = (0, 500 * 86_400)
    # Prime the CSR index so the bench measures the query, not the
    # one-off index build.
    db.daily_series_for(target, *window)

    indexed_time, indexed = _timed(
        lambda: db.daily_series_for(target, *window)
    )
    scan_time, scanned = _timed(
        lambda: db._daily_series_scan(target, *window)  # noqa: SLF001
    )
    speedup = scan_time / indexed_time
    print()
    print(
        f"masked scan: {scan_time * 1e6:8.1f} us   "
        f"indexed: {indexed_time * 1e6:8.1f} us   ({speedup:.1f}x)"
    )
    np.testing.assert_array_equal(indexed, scanned)
    assert indexed.sum() == db.profile(target).total_queries
    if not IN_CI:
        assert speedup > INDEX_MIN_SPEEDUP, (
            f"indexed series speedup {speedup:.1f}x; "
            f"contract is > {INDEX_MIN_SPEEDUP}x"
        )


def test_sharded_generation_matches_serial():
    serial_time, serial = _timed(
        lambda: NxdomainTraceGenerator(seed=0, config=TRACE_CONFIG).generate()
    )
    sharded_time, sharded = _timed(
        lambda: NxdomainTraceGenerator(seed=0, config=TRACE_CONFIG).generate(
            jobs=TRACE_JOBS
        )
    )
    cores = os.cpu_count() or 1
    print()
    print(
        f"serial generate: {serial_time * 1e3:8.1f} ms   "
        f"jobs={TRACE_JOBS}: {sharded_time * 1e3:8.1f} ms   "
        f"({serial_time / sharded_time:.2f}x, {cores} cores)"
    )
    # The determinism contract is the hard gate at any core count.
    assert serial.nx_db.fingerprint() == sharded.nx_db.fingerprint()
    assert (
        serial.pre_expiry_db.fingerprint()
        == sharded.pre_expiry_db.fingerprint()
    )
    assert [r.domain for r in serial.population] == [
        r.domain for r in sharded.population
    ]


# -- chunk-parallel aggregates ----------------------------------------------

AGG_ROWS = 200_000
AGG_DOMAINS = 2_000
AGG_JOBS = 4


def _aggregate_bundle(db):
    """Every generation-keyed aggregate, as one comparable value."""
    domains_series, queries_series = db.lifespan_decay(60)
    return (
        db.monthly_response_series(),
        db.tld_histogram(),
        domains_series.tobytes(),
        queries_series.tobytes(),
        db.digest(),
        db.fingerprint(),
    )


def test_parallel_aggregates_match_serial_and_win():
    rng = make_rng(2)
    domains = [DomainName(f"agg-{i}.com") for i in range(AGG_DOMAINS)]
    picks = rng.integers(0, AGG_DOMAINS, size=AGG_ROWS)
    times = rng.integers(0, 500, size=AGG_ROWS).astype(np.int64) * 86_400
    counts = rng.integers(1, 6, size=AGG_ROWS).astype(np.int64)

    def build(jobs):
        db = PassiveDnsDatabase(aggregate_jobs=jobs)
        ids = db.intern_many(domains)
        db.add_batch(ids[picks], times, counts)
        return db

    stores = {jobs: build(jobs) for jobs in (1, 2, AGG_JOBS)}
    bundles = {jobs: _aggregate_bundle(db) for jobs, db in stores.items()}
    # Hard gate: bit-identical aggregates at every worker count.
    assert bundles[2] == bundles[1]
    assert bundles[AGG_JOBS] == bundles[1]

    def rebuild_aggregates(db):
        # The caches are generation-keyed; dropping them makes each
        # round rebuild from the (already primed) columns.
        db._agg_cache.clear()  # noqa: SLF001
        return _aggregate_bundle(db)

    serial_time, _ = _timed(lambda: rebuild_aggregates(stores[1]))
    parallel_time, _ = _timed(lambda: rebuild_aggregates(stores[AGG_JOBS]))
    speedup = serial_time / parallel_time
    cores = os.cpu_count() or 1
    print()
    print(
        f"serial aggregates: {serial_time * 1e3:8.1f} ms   "
        f"jobs={AGG_JOBS}: {parallel_time * 1e3:8.1f} ms   "
        f"({speedup:.2f}x, {AGG_ROWS} rows, {cores} cores)"
    )
    if not IN_CI and cores >= AGG_JOBS:
        assert speedup > PARALLEL_AGG_MIN_SPEEDUP, (
            f"parallel aggregate speedup {speedup:.2f}x; "
            f"contract is > {PARALLEL_AGG_MIN_SPEEDUP}x"
        )


# -- ingest fast lane --------------------------------------------------------

PIPE_ROWS = 30_000


def test_fast_lane_beats_record_path():
    t0 = date_to_epoch(STUDY_START)
    observations = [
        DnsObservation(
            qname=DomainName(f"host{i % 800}.example{i % 13}.com"),
            rcode=RCode.NXDOMAIN,
            timestamp=t0 + i * 60,
            sensor_id="s1",
        )
        for i in range(PIPE_ROWS)
    ]

    def run(fast_lane):
        pipeline = ResilientIngestPipeline(fast_lane=fast_lane)
        pipeline.ingest_many(observations)
        pipeline.finish()
        return pipeline

    fast_time, fast = _timed(lambda: run(True))
    record_time, record = _timed(lambda: run(False))
    speedup = record_time / fast_time
    print()
    print(
        f"record path: {record_time * 1e3:8.1f} ms "
        f"({PIPE_ROWS / record_time:,.0f} rows/s)   "
        f"fast lane: {fast_time * 1e3:8.1f} ms "
        f"({PIPE_ROWS / fast_time:,.0f} rows/s)   ({speedup:.2f}x)"
    )
    # Hard gate: the lane is a pure optimization — same store.
    assert fast.database.fingerprint() == record.database.fingerprint()
    assert fast.stats == record.stats
    if not IN_CI:
        assert speedup > FAST_LANE_MIN_SPEEDUP, (
            f"fast lane speedup {speedup:.2f}x; "
            f"contract is > {FAST_LANE_MIN_SPEEDUP}x"
        )
