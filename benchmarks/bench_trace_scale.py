"""Trace-generation and columnar-ingest scale benchmarks.

Checks the performance contracts of this repo's ingest→aggregate
vectorization:

- **batch vs scalar ingest** — :meth:`PassiveDnsDatabase.add_batch`
  must land the same store as row-by-row :meth:`add` (fingerprint
  equality, the hard gate everywhere) and be >= 5x faster (asserted
  only off-CI, where wall time is meaningful);
- **indexed vs scanned per-domain series** — the CSR-indexed
  :meth:`daily_series_for` must match the reference masked scan
  exactly and be >= 10x faster on a store where the target domain
  owns a small fraction of the rows;
- **serial vs sharded generation** — ``generate(jobs=4)`` must be
  fingerprint-identical to ``generate(jobs=1)`` (hard gate); the
  wall-time comparison is printed for the record.  Sharded generation
  only wins on hosts with spare cores and big populations, so no
  speedup is asserted anywhere.

``time.perf_counter`` is a monotonic interval timer, not a wall-clock
read, so it is (deliberately) outside REP001's ban list.
"""

import os
import time

import numpy as np
import pytest

from repro.dns.name import DomainName
from repro.passivedns.database import PassiveDnsDatabase
from repro.rand import make_rng
from repro.workloads.trace import NxdomainTraceGenerator, TraceConfig

#: Batch ingest must beat scalar ingest by this factor (off-CI only).
BATCH_MIN_SPEEDUP = 5.0
#: Indexed per-domain series must beat the masked scan by this factor.
INDEX_MIN_SPEEDUP = 10.0
ROUNDS = 3
#: Timing ratios are informational on CI; structural contracts
#: (fingerprint equality, identical series) are the hard gates
#: everywhere.
IN_CI = bool(os.environ.get("CI"))

N_ROWS = 60_000
N_DOMAINS = 600
#: The series bench runs over a bigger store (built via batch ingest,
#: so it costs little) — the index's edge grows with rows-per-store /
#: rows-per-domain, and a small store understates it.
SERIES_ROWS = 400_000
SERIES_DOMAINS = 2_000
TRACE_CONFIG = TraceConfig(total_domains=1_500, squat_count=60)
TRACE_JOBS = 4


def _timed(fn):
    """Best-of-N wall time; best-of filters scheduler noise."""
    best = None
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def workload():
    """One synthetic row set shared by the ingest and series benches."""
    rng = make_rng(0)
    domains = [DomainName(f"scale-{i}.com") for i in range(N_DOMAINS)]
    picks = rng.integers(0, N_DOMAINS, size=N_ROWS)
    times = rng.integers(0, 500, size=N_ROWS).astype(np.int64) * 86_400
    counts = rng.integers(1, 6, size=N_ROWS).astype(np.int64)
    return domains, picks, times, counts


def test_batch_ingest_beats_scalar(workload):
    domains, picks, times, counts = workload

    def scalar():
        db = PassiveDnsDatabase()
        for pick, timestamp, count in zip(
            picks.tolist(), times.tolist(), counts.tolist()
        ):
            db.add(domains[pick], timestamp, count)
        return db

    def batch():
        db = PassiveDnsDatabase()
        ids = db.intern_many(domains)
        db.add_batch(ids[picks], times, counts)
        return db

    scalar_time, scalar_db = _timed(scalar)
    batch_time, batch_db = _timed(batch)
    speedup = scalar_time / batch_time
    print()
    print(
        f"scalar ingest: {scalar_time * 1e3:8.1f} ms   "
        f"batch ingest: {batch_time * 1e3:8.1f} ms   "
        f"({speedup:.1f}x, {N_ROWS} rows)"
    )
    # Hard gate: the batch path is a pure optimization — same store.
    assert batch_db.fingerprint() == scalar_db.fingerprint()
    assert batch_db.total_responses() == scalar_db.total_responses()
    if not IN_CI:
        assert speedup > BATCH_MIN_SPEEDUP, (
            f"batch ingest speedup {speedup:.1f}x; "
            f"contract is > {BATCH_MIN_SPEEDUP}x"
        )


def test_indexed_series_beats_scan():
    rng = make_rng(1)
    domains = [DomainName(f"series-{i}.com") for i in range(SERIES_DOMAINS)]
    db = PassiveDnsDatabase()
    ids = db.intern_many(domains)
    db.add_batch(
        ids[rng.integers(0, SERIES_DOMAINS, size=SERIES_ROWS)],
        rng.integers(0, 500, size=SERIES_ROWS).astype(np.int64) * 86_400,
        rng.integers(1, 6, size=SERIES_ROWS).astype(np.int64),
    )
    target = domains[11]
    window = (0, 500 * 86_400)
    # Prime the CSR index so the bench measures the query, not the
    # one-off index build.
    db.daily_series_for(target, *window)

    indexed_time, indexed = _timed(
        lambda: db.daily_series_for(target, *window)
    )
    scan_time, scanned = _timed(
        lambda: db._daily_series_scan(target, *window)  # noqa: SLF001
    )
    speedup = scan_time / indexed_time
    print()
    print(
        f"masked scan: {scan_time * 1e6:8.1f} us   "
        f"indexed: {indexed_time * 1e6:8.1f} us   ({speedup:.1f}x)"
    )
    np.testing.assert_array_equal(indexed, scanned)
    assert indexed.sum() == db.profile(target).total_queries
    if not IN_CI:
        assert speedup > INDEX_MIN_SPEEDUP, (
            f"indexed series speedup {speedup:.1f}x; "
            f"contract is > {INDEX_MIN_SPEEDUP}x"
        )


def test_sharded_generation_matches_serial():
    serial_time, serial = _timed(
        lambda: NxdomainTraceGenerator(seed=0, config=TRACE_CONFIG).generate()
    )
    sharded_time, sharded = _timed(
        lambda: NxdomainTraceGenerator(seed=0, config=TRACE_CONFIG).generate(
            jobs=TRACE_JOBS
        )
    )
    cores = os.cpu_count() or 1
    print()
    print(
        f"serial generate: {serial_time * 1e3:8.1f} ms   "
        f"jobs={TRACE_JOBS}: {sharded_time * 1e3:8.1f} ms   "
        f"({serial_time / sharded_time:.2f}x, {cores} cores)"
    )
    # The determinism contract is the hard gate at any core count.
    assert serial.nx_db.fingerprint() == sharded.nx_db.fingerprint()
    assert (
        serial.pre_expiry_db.fingerprint()
        == sharded.pre_expiry_db.fingerprint()
    )
    assert [r.domain for r in serial.population] == [
        r.domain for r in sharded.population
    ]
