"""Figure 6 — DNS queries before and after a domain becomes NX.

Paper: over 10,000 sampled long-lived NXDomains, query volume drops
after the status change but does not vanish; a pronounced spike appears
about 30 days after the domain first appears as NX, briefly exceeding
the pre-expiry volume.
"""

from repro.core.reports import render_figure6
from repro.core.scale import expiry_timeline
from repro.rand import make_rng


def test_fig06_expiry_timeline(benchmark, trace):
    timeline = benchmark(
        expiry_timeline, trace, 1_000, 120, make_rng(1)
    )
    print()
    print(render_figure6(timeline))
    checks = timeline.shape_checks()
    assert all(checks.values()), checks
